package sim

import (
	"math/rand"

	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/stats"
)

// ServerModel calibrates the NF server's timing: the DPDK framework's
// per-packet and per-byte RX cost, the NIC descriptor ring, the inter-NF
// rings, core frequency, and the PCIe bus. Presets matching the paper's
// machines live in internal/harness (calibration.go) with the paper
// quotes that justify them.
type ServerModel struct {
	// FreqHz converts NF cycle costs to time (paper NF server: 2.3 GHz
	// Xeon E7-4870 v2).
	FreqHz float64
	// RxFixedNs is the framework's fixed per-packet receive cost
	// (descriptor handling, mbuf bookkeeping, dispatch).
	RxFixedNs float64
	// RxPerByteNs is the per-wire-byte receive cost (copies, cache
	// traffic). PayloadPark's benefit on the compute side comes from
	// shrinking this term.
	RxPerByteNs float64
	// NICRing is the RX descriptor ring size in packets; overflow is
	// where "packet drops at the NF server NIC" (§6.3.3) happen.
	NICRing int
	// StageQueue is the capacity of the rings between pipelined NFs.
	StageQueue int
	// PCIeBps is the usable PCIe bandwidth shared by RX and TX DMA
	// (x8 Gen3 after framing, ~66 Gbps).
	PCIeBps float64
	// PCIeOverheadBytes is the per-packet DMA overhead (descriptors,
	// TLP headers) charged to the bus.
	PCIeOverheadBytes int
	// ServiceJitterPct adds uniform ±pct jitter to RX and NF service
	// times (container scheduling, interrupts). Zero disables it. With
	// jitter, queueing delay grows gradually as load approaches
	// saturation — the effect behind Fig. 14's eviction onset.
	ServiceJitterPct float64
	// StallPeriodNs/StallNs model periodic receive-path stalls (container
	// scheduling, interrupt storms): every StallPeriodNs the RX core
	// pauses for StallNs. During the stall and its drain, in-flight
	// residence grows with offered load; whether parked payloads survive
	// the excursion depends on the lookup-table size — the effect the
	// Fig. 14 memory sweep measures. Zero disables stalls.
	StallPeriodNs int64
	StallNs       int64
}

// DefaultServerModel is the OpenNetVM-on-Xeon calibration used unless an
// experiment overrides it.
func DefaultServerModel() ServerModel {
	return ServerModel{
		FreqHz:            2.3e9,
		RxFixedNs:         65,
		RxPerByteNs:       0.023,
		NICRing:           1024,
		StageQueue:        4096,
		PCIeBps:           66e9,
		PCIeOverheadBytes: 8,
	}
}

// station is a single-server FIFO service center.
type station struct {
	busyUntil int64
	queued    int
}

// ServerSim wraps an nf.Server with the timing model: NIC ring -> PCIe
// DMA -> RX core -> one pipelined station per NF -> PCIe DMA -> out.
type ServerSim struct {
	eng   *Engine
	model ServerModel
	srv   *nf.Server

	out        func(Parcel)         // transmit toward the switch
	onDrop     func(Parcel, string) // unintended drops (ring/stage overflow)
	onConsumed func(Parcel)         // intended NF drops (no notification)

	// Pre-bound event handlers (see Engine.ScheduleParcel): created once
	// so the per-packet station hops schedule without closure allocations.
	rxDoneFn    func(Parcel)
	stageDoneFn func(Parcel)

	rxOccupancy int
	rx          station
	stages      []station
	pcieBusy    int64
	rng         *rand.Rand

	// RxDrops counts NIC ring overflows; StageDrops inter-NF ring
	// overflows; PCIeBytes total DMA bytes (both directions).
	RxDrops    stats.Counter
	StageDrops stats.Counter
	PCIeBytes  stats.Counter
}

// NewServerSim builds a server simulation around a behavioural server.
func NewServerSim(eng *Engine, model ServerModel, srv *nf.Server, out func(Parcel), onDrop func(Parcel, string), onConsumed func(Parcel)) *ServerSim {
	s := &ServerSim{
		eng: eng, model: model, srv: srv,
		out: out, onDrop: onDrop, onConsumed: onConsumed,
		stages: make([]station, srv.Chain().Len()),
		rng:    rand.New(rand.NewSource(0x5eed)),
	}
	s.rxDoneFn = s.rxDone
	s.stageDoneFn = s.stageDone
	if model.StallPeriodNs > 0 && model.StallNs > 0 {
		var stall func()
		stall = func() {
			now := eng.Now()
			if s.rx.busyUntil < now {
				s.rx.busyUntil = now
			}
			s.rx.busyUntil += model.StallNs
			eng.Schedule(model.StallPeriodNs, stall)
		}
		eng.Schedule(model.StallPeriodNs, stall)
	}
	return s
}

// jitter perturbs a service time by the configured uniform percentage.
func (s *ServerSim) jitter(ns int64) int64 {
	j := s.model.ServiceJitterPct
	if j <= 0 {
		return ns
	}
	f := 1 + j*(2*s.rng.Float64()-1)
	return int64(float64(ns) * f)
}

// pcieTransfer serializes a DMA of n packet bytes on the shared bus and
// returns its completion time.
func (s *ServerSim) pcieTransfer(pktBytes int) int64 {
	bytes := pktBytes + s.model.PCIeOverheadBytes
	s.PCIeBytes.Add(uint64(bytes))
	start := s.pcieBusy
	if now := s.eng.Now(); start < now {
		start = now
	}
	done := start + int64(float64(bytes*8)/s.model.PCIeBps*1e9)
	s.pcieBusy = done
	return done
}

// Receive is the link-delivery handler: a packet arrives at the NIC.
func (s *ServerSim) Receive(p Parcel) {
	if s.rxOccupancy >= s.model.NICRing {
		s.RxDrops.Inc()
		if s.onDrop != nil {
			s.onDrop(p, "nic ring overflow")
		}
		return
	}
	s.rxOccupancy++
	// DMA into host memory, then the RX core picks it up.
	dmaDone := s.pcieTransfer(p.Pkt.Len())
	rxNs := s.jitter(int64(s.model.RxFixedNs + s.model.RxPerByteNs*float64(p.Pkt.Len())))
	start := s.rx.busyUntil
	if start < dmaDone {
		start = dmaDone
	}
	done := start + rxNs
	s.rx.busyUntil = done
	s.eng.ScheduleParcelAt(done, s.rxDoneFn, p)
}

// rxDone runs when the RX core has picked the packet off the ring: the NF
// chain renders its verdict and the packet enters the pipelined stations.
func (s *ServerSim) rxDone(p Parcel) {
	s.rxOccupancy--
	p.res = s.srv.Handle(p.Pkt)
	p.stage = 0
	s.enterStage(p)
}

// enterStage routes the packet through the pipelined NF stations it was
// actually charged for (stages after a Drop verdict are skipped because
// res.Costs is truncated). The verdict and station index ride in the
// parcel.
func (s *ServerSim) enterStage(p Parcel) {
	i := p.stage
	if i >= len(p.res.Costs) {
		s.finish(p)
		return
	}
	st := &s.stages[i]
	if st.queued >= s.model.StageQueue {
		s.StageDrops.Inc()
		if s.onDrop != nil {
			s.onDrop(p, "stage queue overflow")
		}
		return
	}
	st.queued++
	serviceNs := s.jitter(int64(float64(p.res.Costs[i].Cycles) / s.model.FreqHz * 1e9))
	start := st.busyUntil
	if now := s.eng.Now(); start < now {
		start = now
	}
	done := start + serviceNs
	st.busyUntil = done
	s.eng.ScheduleParcelAt(done, s.stageDoneFn, p)
}

// stageDone leaves station p.stage and enters the next one.
func (s *ServerSim) stageDone(p Parcel) {
	s.stages[p.stage].queued--
	p.stage++
	s.enterStage(p)
}

// finish transmits the result (forwarded packet or explicit-drop
// notification) or records a silent drop.
func (s *ServerSim) finish(p Parcel) {
	if p.res.Out == nil {
		if s.onConsumed != nil {
			s.onConsumed(p)
		}
		return
	}
	p.Pkt = p.res.Out
	p.res = nf.Result{}
	txDone := s.pcieTransfer(p.Pkt.Len())
	s.eng.ScheduleParcelAt(txDone, s.out, p)
}
