package sim

import (
	"bytes"
	"math"
	"testing"

	"github.com/payloadpark/payloadpark/internal/pcap"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// TestReplayDrivenTestbed replays a materialized pcap workload through
// the simulated deployment — the paper's actual methodology ("We replay
// PCAP files to simulate an enterprise datacenter traffic pattern").
func TestReplayDrivenTestbed(t *testing.T) {
	// Materialize a capture of the Fig. 6 workload.
	var buf bytes.Buffer
	genCfg := trafficgen.Config{
		Sizes: trafficgen.Datacenter{}, Flows: 256,
		SrcMAC: MACGen, DstMAC: MACNF,
		DstIP: [4]byte{10, 1, 0, 9}, DstPort: 80, Seed: 5,
	}
	if err := trafficgen.WriteWorkload(pcap.NewWriter(&buf), genCfg, 4000); err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := smokeConfig(true, 4)
	cfg.Name = "replay"
	cfg.Source = func() trafficgen.Source {
		rp, err := trafficgen.NewReplay(recs, MACGen, MACNF)
		if err != nil {
			t.Fatal(err)
		}
		return rp
	}
	res := RunTestbed(cfg)
	if res.GoodputGbps <= 0 || res.Splits == 0 {
		t.Fatalf("replay run inert: %+v", res)
	}
	// The replayed workload matches the synthetic one statistically, so
	// goodput at equal offered load should agree closely.
	synth := RunTestbed(smokeConfig(true, 4))
	if math.Abs(res.GoodputGbps-synth.GoodputGbps) > 0.05*synth.GoodputGbps {
		t.Errorf("replay goodput %.3f vs synthetic %.3f", res.GoodputGbps, synth.GoodputGbps)
	}
}
