package sim

import "testing"

// BenchmarkEngineSchedulePop measures the schedule+pop+dispatch cycle of
// both queue backends under the two workload shapes that matter:
//
//   - hot: a steady-state pool of in-flight events all firing within a
//     few microseconds of now — the link-serialization / switch-traversal
//     / server-station regime that dominates every preset's profile. The
//     wheel turns each cycle into a bucket append plus a bitmap scan.
//   - far: half the pool re-arms microseconds-to-milliseconds out, past
//     the hot window — saturated-queue drain backlogs, stall timers,
//     controller ticks. These land in the far level (and, for the tail
//     past the span, the overflow heap) and cascade back as the clock
//     reaches their window.
//
// Each benchmark op is one executed event that re-arms itself, keeping
// the queue at a constant 4096 in-flight events.
func BenchmarkEngineSchedulePop(b *testing.B) {
	shapes := []struct {
		name  string
		delay func(rng *uint64) int64
	}{
		{"hot", func(rng *uint64) int64 {
			return 100 + int64(xorshift(rng)%8000)
		}},
		{"far", func(rng *uint64) int64 {
			if xorshift(rng)%2 == 0 {
				return 100 + int64(xorshift(rng)%8000)
			}
			d := wheelSize + int64(xorshift(rng)%(64*wheelSize))
			if xorshift(rng)%8 == 0 {
				d += wheelSpan // past the span: heap divert + migration
			}
			return d
		}},
	}
	engines := []struct {
		name string
		mk   func() *Engine
	}{
		{"wheel", NewEngine},
		{"heap", NewEngineHeap},
	}
	const inflight = 4096
	for _, shape := range shapes {
		for _, eng := range engines {
			b.Run(shape.name+"/"+eng.name, func(b *testing.B) {
				e := eng.mk()
				rng := uint64(0x9e3779b97f4a7c15)
				left := b.N
				var rearm func(Parcel)
				rearm = func(p Parcel) {
					if left--; left > 0 {
						e.ScheduleParcel(shape.delay(&rng), rearm, p)
					}
				}
				for i := 0; i < inflight; i++ {
					e.ScheduleParcelAt(shape.delay(&rng), rearm, Parcel{})
				}
				b.ReportAllocs()
				b.ResetTimer()
				e.Run(1 << 62)
			})
		}
	}
}

func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}
