package sim

import (
	"fmt"
	"sync"
	"time"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// FabricDataplaneConfig drives a chain of striped PayloadPark switches as
// fast as the host allows — the fabric analogue of DataplaneConfig. Each
// switch runs one program per active pipe and parks its own 160-byte
// block, treating the upstream switch's header as opaque payload (§7
// striping); frames cross inter-switch hops as bytes, re-parsed with the
// receiving switch's port geometry. With Pipelined set, every switch gets
// its own ParallelDriver and its own worker goroutine, so switch k
// processes batch n while switch k+1 still holds batch n-1 — pipeline
// parallelism across switches stacked on the per-pipe parallelism inside
// each driver.
type FabricDataplaneConfig struct {
	// Switches is the chain length (1..4, default 2: think ingress leaf
	// plus spine).
	Switches int
	// Pipes is how many pipes carry traffic per switch (1..core.NumPipes).
	Pipes int
	// Packets is the number of distinct packets pre-built per pipe.
	Packets int
	// Rounds is how many full fabric round trips each packet makes.
	Rounds int
	// Batch is the injection batch size (default 256).
	Batch int
	// Pipelined runs one driver+worker per switch instead of walking the
	// chain sequentially on one goroutine.
	Pipelined bool
	// Size is the generated packet size in bytes (default 882). It must
	// leave every switch in the chain enough payload to park.
	Size int
	// Slots sizes each program's lookup table (default 8192).
	Slots int
	// Seed drives traffic generation.
	Seed int64
}

func (c *FabricDataplaneConfig) fillDefaults() {
	if c.Switches == 0 {
		c.Switches = 2
	}
	if c.Pipes == 0 {
		c.Pipes = core.NumPipes
	}
	if c.Packets == 0 {
		c.Packets = 1024
	}
	if c.Rounds == 0 {
		c.Rounds = 32
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
	if c.Size == 0 {
		c.Size = 882
	}
	if c.Slots == 0 {
		c.Slots = 8192
	}
}

// FabricDataplaneResult reports a fabric dataplane drive.
type FabricDataplaneResult struct {
	// Packets is the total number of injections across the chain
	// (each round trip costs one split and one merge per switch).
	Packets uint64 `json:"packets"`
	// Elapsed is the wall-clock drive time.
	Elapsed     time.Duration `json:"elapsed_ns"`
	NsPerPacket float64       `json:"ns_per_packet"`
	Mpps        float64       `json:"mpps"`
	// Splits/Merges are summed over every switch's programs; PerSwitch
	// holds the per-switch split counts (striping evidence).
	Splits    uint64   `json:"splits"`
	Merges    uint64   `json:"merges"`
	PerSwitch []uint64 `json:"per_switch"`
	// Workers is the total pipe-worker count across drivers (1 when
	// sequential).
	Workers int `json:"workers"`
}

// String renders a one-line summary.
func (r FabricDataplaneResult) String() string {
	return fmt.Sprintf("packets=%d elapsed=%s ns/pkt=%.0f Mpps=%.2f workers=%d splits=%d merges=%d",
		r.Packets, r.Elapsed.Round(time.Millisecond), r.NsPerPacket, r.Mpps, r.Workers, r.Splits, r.Merges)
}

// fabStage is one switch of the chain plus its injection function.
type fabStage struct {
	sw     *core.Switch
	inject func([]core.BatchPacket, []core.BatchResult)
	driver *core.ParallelDriver
}

// fabBatch is one batch's reusable state as it moves along the chain:
// per-switch packet objects (each switch parses arriving frames into its
// own), the wire-frame buffers between hops, and the injection scratch.
type fabBatch struct {
	n      int
	trips  int
	pkts   [][]*packet.Packet // [switch][slot]
	frames [][]byte           // [slot] serialized wire frames
	pipes  []int              // [slot] pipe assignment
	bp     []core.BatchPacket
	res    []core.BatchResult
}

// buildFabricDataplane constructs the switch chain and the batches.
func buildFabricDataplane(cfg FabricDataplaneConfig) ([]*fabStage, []*fabBatch) {
	stages := make([]*fabStage, cfg.Switches)
	for k := range stages {
		sw := core.NewSwitch(fmt.Sprintf("fab%d", k))
		for pipe := 0; pipe < cfg.Pipes; pipe++ {
			splitPort, mergePort, sinkPort := dataplanePorts(pipe)
			nfMAC, sinkMAC := dataplaneMACs(pipe)
			sw.AddL2Route(nfMAC, mergePort)
			if k == 0 {
				sw.AddL2Route(sinkMAC, sinkPort)
			} else {
				// Downstream switches return merged traffic toward the
				// upstream switch over the same cable it arrived on.
				sw.AddL2Route(sinkMAC, splitPort)
			}
			if _, err := sw.AttachPayloadPark(core.Config{
				Slots: cfg.Slots, MaxExpiry: 1,
				SplitPort: splitPort, MergePort: mergePort,
			}, -1); err != nil {
				panic(fmt.Sprintf("sim: fabric dataplane attach %d/%d: %v", k, pipe, err))
			}
		}
		stages[k] = &fabStage{sw: sw, inject: sw.InjectBatch}
	}

	// Pre-build the traffic, sliced into batches round-robin over pipes.
	total := cfg.Pipes * cfg.Packets
	var batches []*fabBatch
	gens := make([]*trafficgen.Generator, cfg.Pipes)
	for pipe := range gens {
		nfMAC, _ := dataplaneMACs(pipe)
		gens[pipe] = trafficgen.New(trafficgen.Config{
			Sizes: trafficgen.Fixed(cfg.Size), Flows: 256,
			SrcMAC: MACGen, DstMAC: nfMAC,
			DstIP: packet.IPv4Addr{10, 3, byte(pipe), 9}, DstPort: 80,
			Seed: cfg.Seed + int64(pipe),
		})
	}
	for off := 0; off < total; off += cfg.Batch {
		n := cfg.Batch
		if off+n > total {
			n = total - off
		}
		b := &fabBatch{
			n:      n,
			pkts:   make([][]*packet.Packet, cfg.Switches),
			frames: make([][]byte, n),
			pipes:  make([]int, n),
			bp:     make([]core.BatchPacket, n),
			res:    make([]core.BatchResult, n),
		}
		for k := range b.pkts {
			b.pkts[k] = make([]*packet.Packet, n)
		}
		for i := 0; i < n; i++ {
			pipe := (off + i) % cfg.Pipes
			b.pipes[i] = pipe
			b.pkts[0][i] = gens[pipe].Next()
			for k := 1; k < cfg.Switches; k++ {
				b.pkts[k][i] = &packet.Packet{}
			}
			b.frames[i] = make([]byte, 0, maxWireFrame)
		}
		batches = append(batches, b)
	}
	return stages, batches
}

// serializeEmissions writes each slot's emission into its frame buffer.
func (b *fabBatch) serializeEmissions() {
	for i := 0; i < b.n; i++ {
		if b.res[i].OK {
			b.frames[i] = b.res[i].Em.Pkt.AppendSerialize(b.frames[i][:0])
		}
	}
}

// parseInto re-parses the frames into switch k's packet objects, using
// the geometry of the port each slot is about to enter.
func (b *fabBatch) parseInto(st *fabStage, k int, merge bool) {
	for i := 0; i < b.n; i++ {
		splitPort, mergePort, _ := dataplanePorts(b.pipes[i])
		in := splitPort
		if merge {
			in = mergePort
		}
		pkt := b.pkts[k][i]
		if err := packet.ParseAtInto(pkt, b.frames[i], st.sw.PPOffset(in)); err != nil {
			panic(fmt.Sprintf("sim: fabric dataplane reparse: %v", err))
		}
		b.bp[i] = core.BatchPacket{Pkt: pkt, In: in}
	}
}

// fabSplit injects the batch on switch k's split ports. For k == 0 the
// packets are the generator originals (already parsed); deeper switches
// parse the arriving frames first.
func fabSplit(st *fabStage, b *fabBatch, k int) {
	if k == 0 {
		for i := 0; i < b.n; i++ {
			splitPort, _, _ := dataplanePorts(b.pipes[i])
			nfMAC, _ := dataplaneMACs(b.pipes[i])
			pkt := b.pkts[0][i]
			pkt.Eth.Dst = nfMAC
			b.bp[i] = core.BatchPacket{Pkt: pkt, In: splitPort}
		}
	} else {
		b.parseInto(st, k, false)
	}
	st.inject(b.bp, b.res)
	b.serializeEmissions()
}

// fabTurnaround plays the NF at the end of the chain: the deepest split
// emissions turn around onto the merge ports, readdressed to the sink.
func fabTurnaround(st *fabStage, b *fabBatch) {
	for i := 0; i < b.n; i++ {
		_, mergePort, _ := dataplanePorts(b.pipes[i])
		_, sinkMAC := dataplaneMACs(b.pipes[i])
		pkt := b.res[i].Em.Pkt
		pkt.Eth.Dst = sinkMAC
		b.bp[i] = core.BatchPacket{Pkt: pkt, In: mergePort}
	}
	st.inject(b.bp, b.res)
	b.serializeEmissions()
}

// fabMerge re-parses the returning frames and merges them on switch k.
// At k == 0 the batch's slot-0 packet objects end up holding the fully
// restored originals, ready for the next round.
func fabMerge(st *fabStage, b *fabBatch, k int) {
	b.parseInto(st, k, true)
	st.inject(b.bp, b.res)
	if k == 0 {
		for i := 0; i < b.n; i++ {
			b.pkts[0][i] = b.res[i].Em.Pkt
		}
	} else {
		b.serializeEmissions()
	}
}

// RunFabricDataplane builds and drives the striped switch chain,
// reporting throughput. Each round trip splits at every switch on the way
// in and merges at every switch on the way back, so the restored packets
// are byte-identical originals and rounds reuse them without touching
// generator state.
func RunFabricDataplane(cfg FabricDataplaneConfig) FabricDataplaneResult {
	cfg.fillDefaults()
	if cfg.Switches < 1 || cfg.Switches > 4 {
		panic(fmt.Sprintf("sim: fabric dataplane supports 1..4 switches, got %d", cfg.Switches))
	}
	// Every switch downstream of the first sees the upstream park replace
	// 160 payload bytes with a 7-byte header; the deepest still needs a
	// full parkable block.
	if need := packet.HeaderUnitLen + core.BaseParkBytes +
		(cfg.Switches-1)*(core.BaseParkBytes-packet.PPHeaderLen); cfg.Size < need {
		panic(fmt.Sprintf("sim: %d B packets too small for %d striping switches (need >= %d)", cfg.Size, cfg.Switches, need))
	}
	stages, batches := buildFabricDataplane(cfg)

	workers := 1
	if cfg.Pipelined {
		workers = 0
		for _, st := range stages {
			st.driver = core.NewParallelDriver(st.sw)
			st.inject = st.driver.InjectBatch
			workers += st.driver.Workers()
		}
		defer func() {
			for _, st := range stages {
				st.driver.Close()
			}
		}()
	}

	injectionsPerTrip := uint64(2 * cfg.Switches)
	var injected uint64
	start := time.Now() //pp:nondeterministic-ok wall-clock throughput measurement, reported not ordered on

	if !cfg.Pipelined {
		for _, b := range batches {
			for r := 0; r < cfg.Rounds; r++ {
				for k := 0; k < cfg.Switches; k++ {
					fabSplit(stages[k], b, k)
				}
				fabTurnaround(stages[cfg.Switches-1], b)
				for k := cfg.Switches - 2; k >= 0; k-- {
					fabMerge(stages[k], b, k)
				}
				injected += injectionsPerTrip * uint64(b.n)
			}
		}
	} else {
		injected = runPipelined(cfg, stages, batches, injectionsPerTrip)
	}
	elapsed := time.Since(start) //pp:nondeterministic-ok wall-clock throughput measurement, reported not ordered on

	res := FabricDataplaneResult{Packets: injected, Elapsed: elapsed, Workers: workers}
	if injected > 0 {
		res.NsPerPacket = float64(elapsed.Nanoseconds()) / float64(injected)
		res.Mpps = float64(injected) / elapsed.Seconds() / 1e6
	}
	for _, st := range stages {
		var s uint64
		for _, prog := range st.sw.Programs() {
			s += prog.C.Splits.Value()
			res.Merges += prog.C.Merges.Value()
		}
		res.Splits += s
		res.PerSwitch = append(res.PerSwitch, s)
	}
	return res
}

// fabMsg moves a batch between switch workers; fwd tells the receiver
// which direction the batch is traveling.
type fabMsg struct {
	b   *fabBatch
	fwd bool
}

// runPipelined drives the chain with one worker goroutine per switch.
// Worker k owns switch k exclusively (ParallelDriver batches are not
// reentrant); batches circulate A -> ... -> Z -> ... -> A, so up to
// len(batches) round trips overlap across the chain.
func runPipelined(cfg FabricDataplaneConfig, stages []*fabStage, batches []*fabBatch, perTrip uint64) uint64 {
	n := len(stages)
	if n == 1 {
		// Degenerate chain: the single driver still parallelizes pipes.
		var injected uint64
		for _, b := range batches {
			for r := 0; r < cfg.Rounds; r++ {
				fabSplit(stages[0], b, 0)
				fabTurnaround(stages[0], b)
				injected += perTrip * uint64(b.n)
			}
		}
		return injected
	}

	in := make([]chan fabMsg, n)
	for k := range in {
		in[k] = make(chan fabMsg, len(batches)+1)
	}
	var wg sync.WaitGroup
	var injected uint64

	// Worker 0: completes round trips, launches the next one, retires
	// finished batches, and tears the pipeline down when all are done.
	wg.Add(1)
	go func() {
		defer wg.Done()
		retired := 0
		for msg := range in[0] {
			b := msg.b
			if !msg.fwd {
				fabMerge(stages[0], b, 0)
				b.trips++
				injected += perTrip * uint64(b.n)
			}
			if b.trips == cfg.Rounds {
				retired++
				if retired == len(batches) {
					close(in[1])
					return
				}
				continue
			}
			fabSplit(stages[0], b, 0)
			in[1] <- fabMsg{b: b, fwd: true}
		}
	}()
	// Middle and last workers.
	for k := 1; k < n; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			if k+1 < n {
				defer close(in[k+1])
			}
			for msg := range in[k] {
				b := msg.b
				if msg.fwd {
					fabSplit(stages[k], b, k)
					if k == n-1 {
						fabTurnaround(stages[k], b)
						in[k-1] <- fabMsg{b: b, fwd: false}
					} else {
						in[k+1] <- fabMsg{b: b, fwd: true}
					}
				} else {
					fabMerge(stages[k], b, k)
					in[k-1] <- fabMsg{b: b, fwd: false}
				}
			}
		}()
	}
	for _, b := range batches {
		in[0] <- fabMsg{b: b, fwd: true}
	}
	wg.Wait()
	return injected
}
