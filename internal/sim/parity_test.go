package sim

import (
	"math"
	"testing"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// The fabric refactor rebuilt RunTestbed and RunMultiServer as presets
// over sim.Fabric. These goldens were recorded from the pre-refactor
// implementations (same configurations, same seeds) and pin every
// pre-existing Result field: the presets must reproduce the old wiring's
// event timeline exactly, not just approximately.

func goldenCfg(pp bool, sendGbps float64, seed int64) TestbedConfig {
	return TestbedConfig{
		Name: "golden", LinkBps: 10e9, SendBps: sendGbps * 1e9,
		Dist: trafficgen.Datacenter{}, Seed: seed,
		BuildChain: func() *nf.Chain {
			return nf.NewChain(
				nf.NewFirewall([]nf.FirewallRule{{Prefix: packet.IPv4Addr{172, 16, 0, 0}, Bits: 12}}),
				nf.NewNAT(packet.IPv4Addr{198, 51, 100, 1}),
			)
		},
		PayloadPark: pp,
		PP:          core.Config{Slots: 16384, MaxExpiry: 1},
		WarmupNs:    2e6, MeasureNs: 10e6,
	}
}

// assertGolden compares every pre-refactor Result field. Floats must
// match to relative 1e-12: the event timeline is identical, so the same
// additions happen in the same order.
func assertGolden(t *testing.T, name string, got, want Result) {
	t.Helper()
	feq := func(field string, g, w float64) {
		if g != w && math.Abs(g-w) > 1e-12*math.Abs(w) {
			t.Errorf("%s: %s = %v, want %v", name, field, g, w)
		}
	}
	ueq := func(field string, g, w uint64) {
		if g != w {
			t.Errorf("%s: %s = %d, want %d", name, field, g, w)
		}
	}
	feq("SendGbps", got.SendGbps, want.SendGbps)
	feq("GoodputGbps", got.GoodputGbps, want.GoodputGbps)
	feq("ToNFGbps", got.ToNFGbps, want.ToNFGbps)
	feq("ToNFMpps", got.ToNFMpps, want.ToNFMpps)
	feq("AvgLatencyUs", got.AvgLatencyUs, want.AvgLatencyUs)
	feq("P99LatencyUs", got.P99LatencyUs, want.P99LatencyUs)
	feq("MaxLatencyUs", got.MaxLatencyUs, want.MaxLatencyUs)
	feq("JitterUs", got.JitterUs, want.JitterUs)
	ueq("Delivered", got.Delivered, want.Delivered)
	feq("UnintendedDropRate", got.UnintendedDropRate, want.UnintendedDropRate)
	ueq("NFDrops", got.NFDrops, want.NFDrops)
	feq("PCIeGbps", got.PCIeGbps, want.PCIeGbps)
	feq("PCIeUtilPct", got.PCIeUtilPct, want.PCIeUtilPct)
	ueq("Splits", got.Splits, want.Splits)
	ueq("Merges", got.Merges, want.Merges)
	ueq("Evictions", got.Evictions, want.Evictions)
	ueq("Premature", got.Premature, want.Premature)
	ueq("OccupiedSkips", got.OccupiedSkips, want.OccupiedSkips)
	ueq("SmallSkips", got.SmallSkips, want.SmallSkips)
	ueq("ExplicitDrops", got.ExplicitDrops, want.ExplicitDrops)
	if got.Healthy != want.Healthy {
		t.Errorf("%s: Healthy = %t, want %t", name, got.Healthy, want.Healthy)
	}
	feq("SRAMPct", got.SRAMPct, want.SRAMPct)
}

func TestTestbedFabricParity(t *testing.T) {
	// PayloadPark at light load.
	assertGolden(t, "pp-light", RunTestbed(goldenCfg(true, 4, 1)), Result{
		Name: "golden", SendGbps: 3.9998584, GoodputGbps: 0.1912848, ToNFGbps: 3.6220184,
		ToNFMpps: 0.5693, AvgLatencyUs: 5.301349384885778, P99LatencyUs: 7.077478645124461,
		MaxLatencyUs: 6.846, JitterUs: 1.5446506151142225, Delivered: 0x163a,
		PCIeGbps: 7.1004792, PCIeUtilPct: 10.758301818181819,
		Splits: 0x115e, Merges: 0x115f, SmallSkips: 0x714, Healthy: true,
		SRAMPct: 17.500101725260418,
	})
	// Baseline at light load.
	assertGolden(t, "baseline-light", RunTestbed(goldenCfg(false, 4, 1)), Result{
		Name: "golden", SendGbps: 3.9998584, GoodputGbps: 0.1912848, ToNFGbps: 4.1078976,
		ToNFMpps: 0.5693, AvgLatencyUs: 5.576470650263611, P99LatencyUs: 7.077478645124461,
		MaxLatencyUs: 7.132, JitterUs: 1.5555293497363882, Delivered: 0x163a,
		PCIeGbps: 8.0724656, PCIeUtilPct: 12.231008484848482, Healthy: true,
	})
	// PayloadPark past saturation (queue drops, unhealthy).
	assertGolden(t, "pp-overload", RunTestbed(goldenCfg(true, 12, 3)), Result{
		Name: "golden", SendGbps: 12.0083288, GoodputGbps: 0.5208672, ToNFGbps: 9.8259184,
		ToNFMpps: 1.5502, AvgLatencyUs: 572.5190586489431, P99LatencyUs: 890.386482912101,
		MaxLatencyUs: 843.987, JitterUs: 271.4679413510569, Delivered: 0x3c8b,
		UnintendedDropRate: 0.01662583129156458,
		PCIeGbps:           19.609192, PCIeUtilPct: 29.710896969696968,
		Splits: 0x3346, Merges: 0x32c2, SmallSkips: 0x1643,
		SRAMPct: 17.500101725260418,
	})
	// Recirculation + explicit drop + lossy NF link + jittery server.
	cfg := goldenCfg(true, 6, 4)
	cfg.PP.Recirculate = true
	cfg.ExplicitDrop = true
	cfg.BuildChain = func() *nf.Chain {
		return nf.NewChain(nf.NewFirewall(nf.BlacklistFraction(0.1)), nf.NewNAT(packet.IPv4Addr{198, 51, 100, 1}))
	}
	cfg.NFLinkLossRate = 0.001
	srv := DefaultServerModel()
	srv.ServiceJitterPct = 0.2
	cfg.Server = srv
	assertGolden(t, "pp-recirc-lossy", RunTestbed(cfg), Result{
		Name: "golden", SendGbps: 6.0014192, GoodputGbps: 0.2881536, ToNFGbps: 4.7451784,
		ToNFMpps: 0.8576, AvgLatencyUs: 5.386311221945125, P99LatencyUs: 7.077478645124461,
		MaxLatencyUs: 6.559, JitterUs: 1.1726887780548756, Delivered: 0x1f54,
		UnintendedDropRate: 0.0023285597857724996, NFDrops: 0xf9,
		PCIeGbps: 8.996688, PCIeUtilPct: 13.631345454545455,
		Splits: 0x1478, Merges: 0x132c, SmallSkips: 0x104c, ExplicitDrops: 0x140,
		SRAMPct: 17.500101725260418,
	})
}

func TestMultiServerFabricParity(t *testing.T) {
	cfg := MultiServerConfig{
		Servers: 8, LinkBps: 10e9, SendBps: 11e9,
		Dist: trafficgen.Fixed(384), SlotsPerServer: 12000, MaxExpiry: 1,
		PayloadPark: true, Seed: 7, WarmupNs: 5e6, MeasureNs: 20e6,
	}
	r := RunMultiServer(cfg)
	if math.Abs(r.SRAMAvgPct-25.634969) > 1e-5 || math.Abs(r.SRAMPeakPct-29.296875) > 1e-5 {
		t.Errorf("SRAM = %.6f/%.6f, want 25.634969/29.296875", r.SRAMAvgPct, r.SRAMPeakPct)
	}
	// Server 1 and 2 of the pre-refactor run, field for field. SendGbps
	// and Delivered were not recorded pre-refactor (always zero); their
	// values here were captured when the measurement was added — every
	// timeline-derived field is still the original golden.
	assertGolden(t, "ms-pp-1", r.PerServer[0], Result{
		Name: "server-1", SendGbps: 11.0106624, GoodputGbps: 6.6230472, ToNFGbps: 7.311156, ToNFMpps: 3.5839,
		AvgLatencyUs: 3.673, MaxLatencyUs: 3.673, Delivered: 71671, Healthy: true,
	})
	assertGolden(t, "ms-pp-2", r.PerServer[1], Result{
		Name: "server-2", SendGbps: 11.010816, GoodputGbps: 6.6231396, ToNFGbps: 7.311258, ToNFMpps: 3.58395,
		AvgLatencyUs: 3.673, MaxLatencyUs: 3.673, Delivered: 71672, Healthy: true,
	})

	cfg.PayloadPark = false
	cfg.Servers = 3
	r = RunMultiServer(cfg)
	assertGolden(t, "ms-base-1", r.PerServer[0], Result{
		Name: "server-1", SendGbps: 11.0106624, GoodputGbps: 9.02784, ToNFGbps: 9.59208, ToNFMpps: 2.93875,
		AvgLatencyUs: 841.3129976858164, MaxLatencyUs: 841.452, Delivered: 58768,
		JitterUs: 0.13900231418358544, UnintendedDropRate: 0.1441744322303443,
	})
	assertGolden(t, "ms-base-3", r.PerServer[2], Result{
		Name: "server-3", SendGbps: 11.010816, GoodputGbps: 9.02784, ToNFGbps: 9.59208, ToNFMpps: 2.93875,
		AvgLatencyUs: 841.3129984005208, MaxLatencyUs: 841.452, Delivered: 58769,
		JitterUs: 0.1390015994792293, UnintendedDropRate: 0.1441724210085792,
	})
}
