package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the parallel half of the event core: a fabric's switch
// graph is split into partitions, each with its own Engine and goroutine,
// conservatively synchronized on link propagation delay.
//
// The synchronization is windowed (YAWNS-style): all partitions execute
// their local events inside a window of length lookahead — the minimum
// propagation delay of any cross-partition link — then meet at a barrier
// where cross-partition deliveries are exchanged. A packet finishing
// serialization at local time t inside window [T, T+Δ) arrives at t+prop
// >= T+Δ, i.e. never inside the window that produced it, so no partition
// can receive an event in its past. Windows skip idle gaps: each round
// starts at the earliest pending event across all partitions.
//
// Determinism is the contract. Within a partition, events execute in
// (at, seq) order exactly as in the serial engine. Across partitions,
// every delivery crossing a cut is stamped with (arrival time, sender
// clock at transmit, lane, per-lane sequence) — lane being the crossing
// link's creation index — and the barrier drains each mailbox in that
// order, so the receiving engine enqueues simultaneous arrivals as the
// serial engine interleaved their transmit completions whenever the
// (at, sentAt) prefix decides, which it does for every preset (pinned
// by TestLeafSpinePartitionParity under -race, including against the
// serial engine at k=1).
//
// Known tie-break corner: when two DIFFERENT cut links with equal
// propagation delay complete transmissions at the same nanosecond toward
// the same destination partition, the serial engine orders the two
// deliveries by its global event seq (the order the tx-done events were
// scheduled), while the barrier orders them by lane. Reconstructing the
// serial seq would require replaying the serial engine's global counter
// across partitions, so in that corner the contract weakens to: results
// are fully deterministic for a given (topology, partition count) — lane
// order is fixed by link creation order — but are not guaranteed
// bit-equal across partition counts, because the set of links that cross
// a cut (and therefore which deliveries are lane-ordered rather than
// seq-ordered) depends on the partitioning. None of the preset
// workloads hit the corner: their sources are desynchronized, so no two
// cut links finish distinct transmissions on the same nanosecond.

// greedyPartition assigns n nodes to k parts, greedily keeping neighbors
// together (minimizing cut edges) under a balance cap of ceil(n/k) nodes
// per part. adj lists each node's neighbors. Nodes are placed in order of
// decreasing degree (stable by index), each onto the part holding the
// most of its already-placed neighbors; ties go to the least-loaded, then
// lowest-indexed part. Deterministic for a given (adj, k).
func greedyPartition(adj [][]int, k int) []int {
	n := len(adj)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	most := (n + k - 1) / k
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(adj[order[a]]) > len(adj[order[b]])
	})
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	load := make([]int, k)
	affinity := make([]int, k) // scratch: placed neighbors per part
	for _, v := range order {
		for p := range affinity {
			affinity[p] = 0
		}
		for _, u := range adj[v] {
			if part[u] >= 0 {
				affinity[part[u]]++
			}
		}
		best := -1
		for p := 0; p < k; p++ {
			if load[p] >= most {
				continue
			}
			if best < 0 || affinity[p] > affinity[best] ||
				(affinity[p] == affinity[best] && load[p] < load[best]) {
				best = p
			}
		}
		part[v] = best
		load[best]++
	}
	return part
}

// crossMsg is one delivery crossing a partition cut, captured in the
// sender's mailbox during a window and drained at the barrier.
type crossMsg struct {
	at     int64 // arrival time (transmit completion + propagation)
	sentAt int64 // sender's clock at transmit completion
	lane   int32 // crossing link's creation index
	seq    uint64
	fn     func(Parcel)
	p      Parcel
}

// mailbox is one directed (source partition -> destination partition)
// message buffer. Only the source partition's goroutine appends during a
// window; only the single-threaded barrier reads and resets it.
type mailbox struct {
	msgs []crossMsg
	seq  uint64
}

func (m *mailbox) post(at, sentAt int64, lane int32, fn func(Parcel), p Parcel) {
	m.seq++
	m.msgs = append(m.msgs, crossMsg{at: at, sentAt: sentAt, lane: lane, seq: m.seq, fn: fn, p: p})
}

// runParallel drives a partitioned fabric to until. Serial fabrics (one
// partition) never reach this: Fabric.Run short-circuits to Engine.Run.
func (f *Fabric) runParallel(until int64) {
	delta := f.minCrossProp
	if delta <= 0 {
		// No link crosses a cut: the partitions are independent timelines.
		delta = until + 1
	}
	k := len(f.parts)
	// Persistent workers: one goroutine per partition, round-tripped per
	// window through unbuffered channels (the channel handoffs are the
	// happens-before edges that keep the mailboxes race-free).
	starts := make([]chan int64, k)
	// Workers acknowledge each window with their wall-clock finish time
	// when barrier metrics are on, zero otherwise; the value never
	// reaches simulation state either way.
	obsOn := f.obs != nil && f.obs.reg != nil
	done := make(chan int64, k)
	var wg sync.WaitGroup
	for i, e := range f.parts {
		starts[i] = make(chan int64)
		wg.Add(1)
		go func(e *Engine, start <-chan int64) {
			defer wg.Done()
			for limit := range start {
				e.Run(limit)
				var finished int64
				if obsOn {
					finished = time.Now().UnixNano() //pp:nondeterministic-ok wall-clock barrier-stall metric only, gated on observability and never fed back into the sim
				}
				done <- finished
			}
		}(e, starts[i])
	}
	for {
		// Next window starts at the earliest pending event anywhere.
		next := int64(-1)
		for _, e := range f.parts {
			if at, ok := e.nextAt(); ok && (next < 0 || at < next) {
				next = at
			}
		}
		if next < 0 || next > until {
			break
		}
		limit := next + delta - 1 // execute events with at < next+delta
		if limit > until {
			limit = until
		}
		for _, c := range starts {
			c <- limit
		}
		var tSum, tMax int64
		for range f.parts {
			t := <-done
			tSum += t
			if t > tMax {
				tMax = t
			}
		}
		if obsOn {
			// Stall = how long the fast partitions collectively idled
			// behind the slowest one this round.
			f.obs.rounds++
			f.obs.stallNs += int64(k)*tMax - tSum
		}
		canceled := false
		for _, e := range f.parts {
			if e.canceled {
				canceled = true
			}
		}
		if canceled {
			// Mark the fabric engine so Canceled() answers for the run.
			f.eng.canceled = true
			break
		}
		f.flushMail()
	}
	for _, c := range starts {
		close(c)
	}
	wg.Wait()
	if !f.eng.canceled {
		for _, e := range f.parts {
			if e.now < until {
				e.now = until
			}
		}
	}
}

// flushMail drains every mailbox into its destination engine. Runs
// single-threaded between windows. Messages destined to one partition are
// merged across all senders and enqueued in (at, sentAt, lane, seq)
// order; the receiving engine's local seq then preserves exactly that
// order among simultaneous arrivals.
func (f *Fabric) flushMail() {
	k := len(f.parts)
	for dst := 0; dst < k; dst++ {
		buf := f.flushBuf[:0]
		for src := 0; src < k; src++ {
			mb := &f.mail[src][dst]
			buf = append(buf, mb.msgs...)
			// Zero the drained slots, not just the scratch copies below:
			// the mailbox backing array would otherwise pin delivered
			// parcels and closures until a later window overwrites them.
			for i := range mb.msgs {
				mb.msgs[i] = crossMsg{}
			}
			mb.msgs = mb.msgs[:0]
		}
		if len(buf) == 0 {
			continue
		}
		if f.obs != nil {
			f.obs.crossMsgs += uint64(len(buf))
			if len(buf) > f.obs.mailboxPeak {
				f.obs.mailboxPeak = len(buf)
			}
		}
		sort.Slice(buf, func(i, j int) bool {
			a, b := &buf[i], &buf[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.sentAt != b.sentAt {
				return a.sentAt < b.sentAt
			}
			if a.lane != b.lane {
				return a.lane < b.lane
			}
			return a.seq < b.seq
		})
		e := f.parts[dst]
		for i := range buf {
			m := &buf[i]
			e.ScheduleParcelAt(m.at, m.fn, m.p)
			m.fn = nil
			m.p = Parcel{}
		}
		f.flushBuf = buf[:0]
	}
}

// SetPartitions splits the fabric into k conservatively synchronized
// partitions, each with its own engine and goroutine. Must be called on
// an empty fabric, before any node or link exists, because nodes bind to
// their partition's engine at creation. k=1 leaves the fabric serial.
func (f *Fabric) SetPartitions(k int) {
	if len(f.switches) > 0 || len(f.links) > 0 || len(f.sources) > 0 || len(f.sinks) > 0 {
		panic("sim: SetPartitions on a populated fabric")
	}
	if k < 1 {
		k = 1
	}
	f.parts = make([]*Engine, k)
	f.parts[0] = f.eng
	for i := 1; i < k; i++ {
		f.parts[i] = NewEngine()
	}
	f.mail = make([][]mailbox, k)
	for i := range f.mail {
		f.mail[i] = make([]mailbox, k)
	}
}

// Partitions returns the partition count (1 for a serial fabric).
func (f *Fabric) Partitions() int {
	if len(f.parts) == 0 {
		return 1
	}
	return len(f.parts)
}

// PartitionEngine returns partition p's engine; p=0 is the fabric's main
// engine, the only one on a serial fabric.
func (f *Fabric) PartitionEngine(p int) *Engine {
	if p == 0 || len(f.parts) == 0 {
		return f.eng
	}
	return f.parts[p]
}

// bindCross registers l as a cut-crossing link: transmit-side events stay
// on src's engine, and completed transmissions post to the src->dst
// mailbox instead of scheduling the delivery locally.
func (f *Fabric) bindCross(l *Link, src, dst int) {
	if l.PropNs <= 0 {
		panic(fmt.Sprintf("sim: cross-partition link %q needs positive propagation delay (conservative lookahead)", l.Name))
	}
	l.xbox = &f.mail[src][dst]
	l.lane = f.lanes
	f.lanes++
	if f.minCrossProp == 0 || l.PropNs < f.minCrossProp {
		f.minCrossProp = l.PropNs
	}
}
