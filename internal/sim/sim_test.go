package sim

import (
	"math"
	"testing"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(30, func() { order = append(order, 3) })
	eng.Schedule(10, func() { order = append(order, 1) })
	eng.Schedule(20, func() { order = append(order, 2) })
	eng.Schedule(10, func() { order = append(order, 4) }) // FIFO at same time
	eng.Run(100)
	want := []int{1, 4, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Now() != 100 {
		t.Errorf("now = %d, want 100", eng.Now())
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(200, func() { fired = true })
	eng.Run(100)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if eng.Pending() != 1 {
		t.Errorf("pending = %d, want 1", eng.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			eng.Schedule(10, tick)
		}
	}
	eng.Schedule(0, tick)
	eng.Run(1000)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Schedule(5, func() {
		eng.Schedule(-100, func() { ran = true })
	})
	eng.Run(10)
	if !ran {
		t.Error("clamped event did not run")
	}
}

func mkParcel(size int) Parcel {
	ft := packet.FiveTuple{
		SrcIP: packet.IPv4Addr{10, 0, 0, 1}, DstIP: packet.IPv4Addr{10, 1, 0, 9},
		SrcPort: 9000, DstPort: 80, Protocol: packet.IPProtoUDP,
	}
	return Parcel{Pkt: packet.NewBuilder(MACGen, MACNF).UDP(ft, size, 1), InWindow: true}
}

func TestLinkSerializationAndDelivery(t *testing.T) {
	eng := NewEngine()
	var deliveredAt []int64
	l := NewLink(eng, 1e9, 100, 1<<20, func(Parcel) {
		deliveredAt = append(deliveredAt, eng.Now())
	}, nil)
	// Two 1000B (1024 wire bytes incl overhead) packets at 1 Gbps:
	// 8192 ns each, plus 100 ns propagation.
	p := mkParcel(1000)
	l.Send(p)
	l.Send(mkParcel(1000))
	eng.Run(1e6)
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered = %d, want 2", len(deliveredAt))
	}
	if deliveredAt[0] != 8192+100 {
		t.Errorf("first delivery at %d, want 8292", deliveredAt[0])
	}
	if deliveredAt[1] != 2*8192+100 {
		t.Errorf("second delivery at %d, want 16484", deliveredAt[1])
	}
	if l.Tx.Value() != 2 {
		t.Errorf("tx = %d", l.Tx.Value())
	}
	_ = p
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	eng := NewEngine()
	drops := 0
	l := NewLink(eng, 1e9, 0, 2100, func(Parcel) {}, func(Parcel, string) { drops++ })
	// Each 1000 B packet occupies 1024 wire bytes; two fit in 2100B, the
	// third does not.
	l.Send(mkParcel(1000))
	l.Send(mkParcel(1000))
	l.Send(mkParcel(1000))
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
	eng.Run(1e6)
	if l.Drops.Value() != 1 || l.Tx.Value() != 2 {
		t.Errorf("link counters tx=%d drops=%d", l.Tx.Value(), l.Drops.Value())
	}
	if l.QueuedBytes() != 0 {
		t.Errorf("queued bytes = %d after drain", l.QueuedBytes())
	}
}

func TestLinkUtilization(t *testing.T) {
	eng := NewEngine()
	l := NewLink(eng, 1e9, 0, 1<<20, func(Parcel) {}, nil)
	l.Send(mkParcel(1000)) // 8192 bits... 1024 bytes * 8
	eng.Run(1e6)
	got := l.Utilization(1e6)
	want := 1024 * 8.0 / 1e6 / 1e3 * 1e9 / 1e9 // bits / (1Gbps * 1ms)
	want = 1024 * 8 / (1e9 * 1e-3)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("utilization = %v, want %v", got, want)
	}
}

func TestServerSimPipelineTiming(t *testing.T) {
	eng := NewEngine()
	model := DefaultServerModel()
	model.RxFixedNs = 100
	model.RxPerByteNs = 0
	model.PCIeBps = 1e12 // effectively instant
	var outAt int64 = -1
	srv := nf.NewServer(nf.ServerConfig{Chain: nf.NewChain(nf.NewSynthetic("S", 230))}) // 230cy@2.3GHz = 100ns
	s := NewServerSim(eng, model, srv, 1, func(Parcel) { outAt = eng.Now() }, nil, nil)
	s.Receive(mkParcel(500))
	eng.Run(1e6)
	// 100 ns RX + 100 ns stage (+ ~0 PCIe) = 200 ns.
	if outAt < 195 || outAt > 210 {
		t.Errorf("out at %d ns, want ~200", outAt)
	}
	if s.PCIeBytes.Value() == 0 {
		t.Error("PCIe bytes not accounted")
	}
}

func TestServerSimRingOverflow(t *testing.T) {
	eng := NewEngine()
	model := DefaultServerModel()
	model.NICRing = 2
	model.RxFixedNs = 1e6 // very slow server
	drops := 0
	srv := nf.NewServer(nf.ServerConfig{Chain: nf.NewChain(nf.MACSwap{})})
	s := NewServerSim(eng, model, srv, 1, func(Parcel) {}, func(Parcel, string) { drops++ }, nil)
	for i := 0; i < 5; i++ {
		s.Receive(mkParcel(200))
	}
	if drops != 3 {
		t.Fatalf("ring drops = %d, want 3", drops)
	}
	if s.RxDrops.Value() != 3 {
		t.Errorf("counter = %d", s.RxDrops.Value())
	}
}

func TestServerSimConsumesNFDrops(t *testing.T) {
	eng := NewEngine()
	consumed := 0
	srv := nf.NewServer(nf.ServerConfig{Chain: nf.NewChain(nf.NewFirewall([]nf.FirewallRule{{Bits: 0}}))})
	s := NewServerSim(eng, DefaultServerModel(), srv, 1,
		func(Parcel) { t.Error("dropped packet transmitted") },
		nil,
		func(Parcel) { consumed++ })
	s.Receive(mkParcel(500))
	eng.Run(1e6)
	if consumed != 1 {
		t.Errorf("consumed = %d, want 1", consumed)
	}
}

// chain builders for testbed smoke tests.
func chainFWNAT() *nf.Chain {
	return nf.NewChain(
		nf.NewFirewall([]nf.FirewallRule{{Prefix: packet.IPv4Addr{172, 16, 0, 0}, Bits: 12}}),
		nf.NewNAT(packet.IPv4Addr{198, 51, 100, 1}),
	)
}

func smokeConfig(pp bool, sendGbps float64) TestbedConfig {
	return TestbedConfig{
		Name:        "smoke",
		LinkBps:     10e9,
		SendBps:     sendGbps * 1e9,
		Dist:        trafficgen.Datacenter{},
		Seed:        1,
		BuildChain:  chainFWNAT,
		PayloadPark: pp,
		PP:          core.Config{Slots: 16384, MaxExpiry: 1},
		WarmupNs:    2e6,
		MeasureNs:   10e6,
	}
}

func TestTestbedBaselineUnderLoad(t *testing.T) {
	res := RunTestbed(smokeConfig(false, 4))
	// 4 Gbps of ~882B packets: ~0.567 Mpps, goodput ~0.19 Gbps.
	if res.SendGbps < 3.8 || res.SendGbps > 4.2 {
		t.Errorf("send = %v Gbps, want ~4", res.SendGbps)
	}
	wantGoodput := 4e9 / (882 * 8) * 336 / 1e9
	if math.Abs(res.GoodputGbps-wantGoodput) > 0.02 {
		t.Errorf("goodput = %v, want ~%.3f", res.GoodputGbps, wantGoodput)
	}
	if !res.Healthy || res.UnintendedDropRate > 0 {
		t.Errorf("unhealthy at light load: %+v", res)
	}
	if res.AvgLatencyUs <= 0 || res.AvgLatencyUs > 50 {
		t.Errorf("latency = %v µs", res.AvgLatencyUs)
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered")
	}
	if res.Splits != 0 {
		t.Error("baseline produced splits")
	}
}

func TestTestbedPayloadParkEqualGoodputBelowSaturation(t *testing.T) {
	base := RunTestbed(smokeConfig(false, 4))
	pp := RunTestbed(smokeConfig(true, 4))
	// Below saturation both deliver the same pps, hence equal goodput
	// (paper Fig. 7: curves overlap until the baseline saturates).
	if math.Abs(pp.GoodputGbps-base.GoodputGbps) > 0.01 {
		t.Errorf("goodput pp=%v base=%v should match below saturation", pp.GoodputGbps, base.GoodputGbps)
	}
	if pp.Splits == 0 || pp.Merges == 0 {
		t.Errorf("payloadpark inactive: %+v", pp)
	}
	if pp.Premature != 0 {
		t.Errorf("premature evictions at light load: %d", pp.Premature)
	}
	// PayloadPark moves fewer bytes to the NF server.
	if pp.ToNFGbps >= base.ToNFGbps {
		t.Errorf("toNF pp=%v >= base=%v", pp.ToNFGbps, base.ToNFGbps)
	}
	// And saves PCIe bandwidth (paper: 12% on this workload).
	if pp.PCIeGbps >= base.PCIeGbps {
		t.Errorf("pcie pp=%v >= base=%v", pp.PCIeGbps, base.PCIeGbps)
	}
}

func TestTestbedSaturationGoodputGain(t *testing.T) {
	// At 11 Gbps offered on a 10GE link the baseline saturates but
	// PayloadPark still fits: its goodput must be higher (Fig. 7 shape).
	base := RunTestbed(smokeConfig(false, 11))
	pp := RunTestbed(smokeConfig(true, 11))
	if base.Healthy {
		t.Errorf("baseline should be unhealthy at 11G: drop=%v", base.UnintendedDropRate)
	}
	if pp.GoodputGbps <= base.GoodputGbps*1.05 {
		t.Errorf("goodput gain missing: pp=%v base=%v", pp.GoodputGbps, base.GoodputGbps)
	}
	// Baseline latency spikes (queue full); PayloadPark stays low.
	if pp.AvgLatencyUs >= base.AvgLatencyUs {
		t.Errorf("latency pp=%v >= base=%v at baseline saturation", pp.AvgLatencyUs, base.AvgLatencyUs)
	}
}

func TestMultiServerRun(t *testing.T) {
	cfg := MultiServerConfig{
		Servers: 4, LinkBps: 10e9, SendBps: 3e9,
		Dist: trafficgen.Fixed(384), SlotsPerServer: 8192, MaxExpiry: 1,
		PayloadPark: true, Seed: 3,
		WarmupNs: 1e6, MeasureNs: 5e6,
	}
	res := RunMultiServer(cfg)
	if len(res.PerServer) != 4 {
		t.Fatalf("servers = %d", len(res.PerServer))
	}
	for i, r := range res.PerServer {
		if r.GoodputGbps <= 0 {
			t.Errorf("server %d goodput = %v", i, r.GoodputGbps)
		}
		if r.AvgLatencyUs <= 0 {
			t.Errorf("server %d latency = %v", i, r.AvgLatencyUs)
		}
	}
	if res.SRAMAvgPct <= 0 || res.SRAMPeakPct < res.SRAMAvgPct {
		t.Errorf("SRAM avg=%v peak=%v", res.SRAMAvgPct, res.SRAMPeakPct)
	}
	// Per-server performance should be consistent (isolation, Fig. 10).
	g0 := res.PerServer[0].GoodputGbps
	for i, r := range res.PerServer {
		if math.Abs(r.GoodputGbps-g0)/g0 > 0.05 {
			t.Errorf("server %d goodput %v deviates from %v", i, r.GoodputGbps, g0)
		}
	}
}

func TestMultiServerPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 servers")
		}
	}()
	RunMultiServer(MultiServerConfig{Servers: 0})
}

func TestWireBytes(t *testing.T) {
	p := mkParcel(1000)
	if WireBytes(p.Pkt) != 1000+trafficgen.WireOverheadBytes {
		t.Errorf("wire bytes = %d", WireBytes(p.Pkt))
	}
}
