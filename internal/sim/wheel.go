package sim

import "math/bits"

// This file is the engine's event queue: a hierarchical timing wheel —
// a hot level at 1 ns granularity covering the current 131 µs window, a
// far level of whole-window buckets covering the next ~134 ms, and the
// 4-ary heap of engine.go demoted to an overflow level beyond that.
//
// The hot wheel wins where the simulator lives: link serialization,
// switch traversal, and server-station events all fire within a few
// microseconds of now, so insert and extract become O(1) bucket appends
// and bitmap scans instead of O(log n) heap sifts. The far level absorbs
// what a loaded fabric schedules beyond the hot window — the drain
// backlog of saturated queues and server stations runs milliseconds
// ahead of the clock at 100G — and cascades each window's bucket into
// the hot wheel as the clock reaches it. Only events past the far
// span (measurement-window boundaries, stall timers) overflow into the
// heap, which sees a handful of events per run and stops mattering to
// the profile.
//
// Ordering is the engine's (at, seq) contract, preserved by construction
// rather than by comparison:
//
//   - The hot wheel holds only events of the current wheelSize-aligned
//     window, so two distinct timestamps can never share a hot bucket,
//     and a bucket's append-order list IS (at, seq) FIFO order.
//   - A far bucket holds exactly one window's events (admission is by
//     window distance — anything farCount or more windows past base's
//     was sent to the heap instead — so an occupied index can never
//     alias base's own, and the circular far scan starting at base's
//     index always meets the nearest window first), appended in push
//     order —
//     so equal-timestamp events sit in seq order. Its bucket is cascaded
//     exactly when its window becomes current: before any hot-level push
//     can target that window. Cascaded nodes therefore always precede
//     the current window's direct pushes in every hot bucket, and both
//     are in seq order, so the relink preserves global FIFO.
//   - An event enters a wheel level only if it fires strictly earlier
//     than the overflow heap's minimum; otherwise it overflows.
//     Inductively every heap event fires at or after every wheel event,
//     and on an equal timestamp the heap event was necessarily scheduled
//     later (greater seq) — so pop never compares levels: the wheels
//     always drain first.
//   - When both wheel levels are empty, the in-span prefix of the heap
//     migrates back into the wheels (in (at, seq) pop order, so bucket
//     lists stay FIFO). Without the migration a single near-future heap
//     resident would divert every later push to the heap for as long as
//     it stayed enqueued, degenerating the queue back into a heap under
//     exactly the loads the wheel exists for.
const (
	wheelBits = 17
	// wheelSize is the hot horizon in nanoseconds (~131 µs) — sized past
	// every hot event the simulator schedules: link serialization (~1.2 µs
	// for 1500 B at 10G), server stations, and — the binding constraint —
	// the drain time of a full 1 MB egress queue at 100G (~84 µs), which
	// is how far ahead a congested port's tx-done events land.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	// wheelWords / sumWords size the hot level's two-level occupancy
	// bitmap: one bit per bucket, one summary bit per occupancy word.
	wheelWords = wheelSize / 64
	sumWords   = wheelWords / 64
	// farCount far buckets, one per wheelSize window, cover wheelSpan
	// (~134 ms) past the hot horizon; farWords is their occupancy bitmap.
	farBits   = 10
	farCount  = 1 << farBits
	farMask   = farCount - 1
	farWords  = farCount / 64
	wheelSpan = wheelSize * farCount
)

// wnode is one wheel-resident event in the node arena; next chains a
// bucket's FIFO list (0 is the nil sentinel — arena slot 0 is unused).
type wnode struct {
	at   int64
	seq  uint64
	slot int32
	next int32
}

// wbucket is one hot-wheel slot's FIFO list. The zero value is the empty
// list, so the bucket array needs no initialization pass.
type wbucket struct {
	head, tail int32
}

// farBucket is one window's FIFO list plus the earliest timestamp in it
// (maintained on append; a bucket mixes timestamps, so the minimum can't
// be read off the head the way a hot bucket's can).
type farBucket struct {
	head, tail int32
	min        int64
}

// timeWheel is the three-level event queue. With enabled=false it
// degrades to the bare overflow heap — the reference scheduler kept
// selectable for differential tests and benchmarks (NewEngineHeap).
type timeWheel struct {
	enabled bool
	// base is the lower edge of the hot window: the engine clock as of
	// the last pop or push. Every hot-resident event fires in
	// [base, base+wheelSize) within base's wheelSize-aligned window.
	base  int64
	count int // hot-level population
	farN  int // far-level population

	buckets []wbucket
	occ     []uint64
	sum     []uint64
	far     []farBucket
	farOcc  []uint64
	nodes   []wnode
	free    []int32

	overflow nodeHeap
}

func (w *timeWheel) init(enabled bool) {
	w.enabled = enabled
	if enabled {
		w.buckets = make([]wbucket, wheelSize)
		w.occ = make([]uint64, wheelWords)
		w.sum = make([]uint64, sumWords)
		w.far = make([]farBucket, farCount)
		w.farOcc = make([]uint64, farWords)
		w.nodes = make([]wnode, 1, 1024) // slot 0 is the nil sentinel
	}
}

func (w *timeWheel) len() int { return w.count + w.farN + len(w.overflow) }

// push enqueues n; now is the engine clock (n.at >= now always, the
// engine clamps).
func (w *timeWheel) push(n node, now int64) {
	if !w.enabled {
		w.overflow.push(n)
		return
	}
	if now > w.base {
		// Advancing the horizon is free: no live wheel event fires
		// before now, and bucket indexing is by absolute timestamp. If
		// the clock crossed into a new window (a Run boundary parked it
		// past the last event), that window's far bucket must cascade
		// before this push can land in the hot level behind its events.
		crossed := now>>wheelBits != w.base>>wheelBits
		w.base = now
		if crossed && w.farN > 0 {
			if fi := int(now>>wheelBits) & farMask; w.far[fi].head != 0 {
				w.cascade(fi)
			}
		}
	}
	if (n.at>>wheelBits)-(w.base>>wheelBits) >= farCount || (len(w.overflow) > 0 && n.at >= w.overflow[0].at) {
		w.overflow.push(n)
		return
	}
	w.place(n)
}

// place inserts an in-span event into the hot or far level. Callers
// guarantee n.at >= base, that n.at's window is within farCount-1
// windows of base's, and, for FIFO, that n follows every already-placed
// equal-timestamp event in seq order.
func (w *timeWheel) place(n node) {
	ni := w.allocNode(wnode{at: n.at, seq: n.seq, slot: n.slot})
	if n.at>>wheelBits != w.base>>wheelBits {
		fi := int(n.at>>wheelBits) & farMask
		b := &w.far[fi]
		if b.head == 0 {
			b.head, b.tail, b.min = ni, ni, n.at
			w.farOcc[fi>>6] |= 1 << uint(fi&63)
		} else {
			w.nodes[b.tail].next = ni
			b.tail = ni
			if n.at < b.min {
				b.min = n.at
			}
		}
		w.farN++
		return
	}
	idx := int(n.at) & wheelMask
	b := &w.buckets[idx]
	if b.head == 0 {
		b.head, b.tail = ni, ni
		w.occ[idx>>6] |= 1 << uint(idx&63)
		w.sum[idx>>12] |= 1 << uint((idx>>6)&63)
	} else {
		w.nodes[b.tail].next = ni
		b.tail = ni
	}
	w.count++
}

// cascade relinks far bucket fi's list into the hot wheel. The caller
// has advanced base into (or up to the minimum of) that bucket's window,
// so every node lands in the current hot window.
func (w *timeWheel) cascade(fi int) {
	b := &w.far[fi]
	ni := b.head
	b.head, b.tail, b.min = 0, 0, 0
	w.farOcc[fi>>6] &^= 1 << uint(fi&63)
	for ni != 0 {
		n := &w.nodes[ni]
		next := n.next
		n.next = 0
		idx := int(n.at) & wheelMask
		hb := &w.buckets[idx]
		if hb.head == 0 {
			hb.head, hb.tail = ni, ni
			w.occ[idx>>6] |= 1 << uint(idx&63)
			w.sum[idx>>12] |= 1 << uint((idx>>6)&63)
		} else {
			w.nodes[hb.tail].next = ni
			hb.tail = ni
		}
		w.farN--
		w.count++
		ni = next
	}
}

// peekAt returns the earliest queued event's timestamp without removing
// it.
func (w *timeWheel) peekAt() (int64, bool) {
	if w.count > 0 {
		idx := w.scanFrom(int(w.base) & wheelMask)
		return w.nodes[w.buckets[idx].head].at, true
	}
	if w.farN > 0 {
		return w.far[w.farScan()].min, true
	}
	if len(w.overflow) > 0 {
		return w.overflow[0].at, true
	}
	return 0, false
}

// popLE removes and returns the earliest event if it fires at or before
// limit. Events beyond limit are left queued (Run boundaries must not
// disturb ordering).
func (w *timeWheel) popLE(limit int64) (node, bool) {
	for {
		if w.count > 0 {
			idx := w.scanFrom(int(w.base) & wheelMask)
			b := &w.buckets[idx]
			ni := b.head
			n := &w.nodes[ni]
			if n.at > limit {
				return node{}, false
			}
			out := node{at: n.at, seq: n.seq, slot: n.slot}
			if b.head = n.next; b.head == 0 {
				b.tail = 0
				if w.occ[idx>>6] &^= 1 << uint(idx&63); w.occ[idx>>6] == 0 {
					w.sum[idx>>12] &^= 1 << uint((idx>>6)&63)
				}
			}
			*n = wnode{}
			w.free = append(w.free, ni)
			w.count--
			w.base = out.at
			return out, true
		}
		if w.farN > 0 {
			fi := w.farScan()
			min := w.far[fi].min
			if min > limit {
				return node{}, false
			}
			// min is the next event to fire anywhere (the heap holds only
			// later events), so the clock is about to reach it: advancing
			// base into its window cannot skip anything.
			w.base = min
			w.cascade(fi)
			continue
		}
		if len(w.overflow) == 0 || w.overflow[0].at > limit {
			return node{}, false
		}
		if !w.enabled {
			out := w.overflow[0]
			w.overflow.pop()
			return out, true
		}
		// Both wheel levels are drained: migrate the heap's in-span
		// prefix back into them (in pop order, so bucket lists stay
		// FIFO), de-poisoning future pushes, then pop from the wheel.
		w.base = w.overflow[0].at
		for len(w.overflow) > 0 && (w.overflow[0].at>>wheelBits)-(w.base>>wheelBits) < farCount {
			n := w.overflow[0]
			w.overflow.pop()
			w.place(n)
		}
	}
}

func (w *timeWheel) allocNode(n wnode) int32 {
	if k := len(w.free); k > 0 {
		ni := w.free[k-1]
		w.free = w.free[:k-1]
		w.nodes[ni] = n
		return ni
	}
	w.nodes = append(w.nodes, n)
	return int32(len(w.nodes) - 1)
}

// scanFrom returns the first occupied hot bucket at or circularly after
// index s — the minimum-timestamp bucket, because all live hot events fit
// one horizon starting at base. The caller guarantees count > 0.
func (w *timeWheel) scanFrom(s int) int {
	// Bits at or after s inside s's own occupancy word.
	if m := w.occ[s>>6] >> uint(s&63); m != 0 {
		return s + bits.TrailingZeros64(m)
	}
	// Whole words after s, wrapping once; the summary level keeps this to
	// a handful of loads however sparse the wheel is. The final iteration
	// revisits the starting summary word to cover the wrapped tail.
	start := s>>6 + 1
	for step := 0; step <= sumWords; step++ {
		si := (start>>6 + step) & (sumWords - 1)
		m := w.sum[si]
		if step == 0 && start&63 != 0 {
			m &= ^uint64(0) << uint(start&63)
		}
		if m != 0 {
			wi := si<<6 + bits.TrailingZeros64(m)
			return wi<<6 + bits.TrailingZeros64(w.occ[wi])
		}
	}
	panic("sim: timing wheel scan found no event (count corrupted)")
}

// farScan returns the occupied far bucket whose window is nearest
// circularly after base's — the earliest, since every occupied window
// lies in (base's window, base's window+farCount), so no occupied index
// ever aliases base's own. The caller guarantees farN > 0.
func (w *timeWheel) farScan() int {
	s := int(w.base>>wheelBits) & farMask
	if m := w.farOcc[s>>6] >> uint(s&63); m != 0 {
		return s + bits.TrailingZeros64(m)
	}
	for step := 1; step <= farWords; step++ {
		si := (s>>6 + step) & (farWords - 1)
		if m := w.farOcc[si]; m != 0 {
			return si<<6 + bits.TrailingZeros64(m)
		}
	}
	panic("sim: far wheel scan found no event (count corrupted)")
}
