package sim

import (
	"fmt"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/ctrl"
	"github.com/payloadpark/payloadpark/internal/obs"
	"github.com/payloadpark/payloadpark/internal/rmt"
)

// ObsConfig carries one run's observability bindings into the presets:
// a metrics registry, a flight-recorder trace, or both. The zero value
// disables everything and is what every preset defaults to.
type ObsConfig struct {
	Metrics *obs.Registry
	Trace   *obs.Trace
}

func (c ObsConfig) enabled() bool { return c.Metrics != nil || c.Trace != nil }

// fabricObs is the per-run observability state hanging off a fabric:
// the trace with one recorder per partition, plus the barrier counters
// the partition runner maintains when metrics are on.
type fabricObs struct {
	trace *obs.Trace
	reg   *obs.Registry
	recs  []*obs.Recorder

	// Barrier bookkeeping (written single-threaded at the barrier).
	rounds      uint64
	crossMsgs   uint64
	mailboxPeak int
	// stallNs accumulates per-round barrier imbalance — the wall-clock
	// time fast partitions spent waiting for the slowest one. The only
	// wall-clock value in the layer; it never feeds back into the sim.
	stallNs int64
}

// EnableObs arms observability on a fully wired fabric. Call after
// every switch, program, source, sink and link exists and before Run
// (and before attachController, which binds the decision track).
// A zero config is a no-op.
func (f *Fabric) EnableObs(cfg ObsConfig) {
	if !cfg.enabled() {
		return
	}
	fo := &fabricObs{trace: cfg.Trace, reg: cfg.Metrics}
	f.obs = fo
	if cfg.Trace != nil {
		k := f.Partitions()
		partOf := make(map[*Engine]int, k)
		fo.recs = make([]*obs.Recorder, k)
		for p := 0; p < k; p++ {
			fo.recs[p] = cfg.Trace.NewRecorder()
			partOf[f.PartitionEngine(p)] = p
		}
		for _, n := range f.switches {
			n.rec = fo.recs[partOf[n.eng]]
			n.trace = cfg.Trace
			n.trk = cfg.Trace.Intern(n.Name)
			n.progs = n.SW.Programs()
			n.dropNames = make(map[string]uint16)
		}
		for _, s := range f.sources {
			s.rec = fo.recs[partOf[s.eng]]
			s.trk = cfg.Trace.Intern(s.Name)
		}
		for _, s := range f.sinks {
			s.rec = fo.recs[partOf[s.eng]]
			s.trk = cfg.Trace.Intern(s.Name)
		}
	}
	if cfg.Metrics != nil {
		f.registerMetrics(cfg.Metrics)
	}
}

// registerMetrics publishes the fabric's state into the registry:
// engine progress per partition, barrier behaviour, per-link and
// per-switch forwarding counters, and every program's parking
// counters. Reads are closures over live state, so snapshots must
// happen after Run returns (the scenario layer guarantees this).
func (f *Fabric) registerMetrics(reg *obs.Registry) {
	k := f.Partitions()
	for p := 0; p < k; p++ {
		e := f.PartitionEngine(p)
		lbl := fmt.Sprintf(`{partition="%d"}`, p)
		reg.Counter("pp_engine_events_total"+lbl, "events executed by the partition engine", e.Executed)
		reg.Gauge("pp_engine_pending_events"+lbl, "events still queued (wheel + heap occupancy)", func() float64 { return float64(e.Pending()) })
	}
	if k > 1 {
		fo := f.obs
		reg.Counter("pp_barrier_rounds_total", "conservative-sync windows executed", func() uint64 { return fo.rounds })
		reg.Counter("pp_barrier_cross_messages_total", "parcels merged across partition mailboxes", func() uint64 { return fo.crossMsgs })
		reg.Gauge("pp_barrier_mailbox_peak_messages", "largest single mailbox flush", func() float64 { return float64(fo.mailboxPeak) })
		reg.Counter("pp_barrier_stall_ns_total", "wall-clock time partitions idled at barriers", func() uint64 { return uint64(fo.stallNs) })
	}
	for _, l := range f.links {
		l := l
		lbl := fmt.Sprintf("{link=%q}", l.Name)
		reg.Counter("pp_link_tx_packets_total"+lbl, "packets transmitted on the link", func() uint64 { return l.Tx.Value() })
		reg.Counter("pp_link_tx_bits_total"+lbl, "bits transmitted on the link", func() uint64 { return l.TxBits.Value() })
		reg.Counter("pp_link_drops_total"+lbl, "packets dropped at the link queue", func() uint64 { return l.Drops.Value() })
	}
	for _, n := range f.switches {
		n := n
		lbl := fmt.Sprintf("{switch=%q}", n.Name)
		reg.Counter("pp_switch_rx_packets_total"+lbl, "packets received by the switch", func() uint64 { return n.SW.RxPackets() })
		reg.Counter("pp_switch_tx_packets_total"+lbl, "packets emitted by the switch", func() uint64 { return n.SW.TxPackets() })
		reg.Counter("pp_switch_drops_total"+lbl, "packets dropped inside the switch", func() uint64 { return n.SW.TotalDrops() })
		for i, prog := range n.SW.Programs() {
			prog := prog
			plbl := fmt.Sprintf("switch=%q,program=\"%d\"", n.Name, i)
			prog.C.RegisterObs(reg, plbl)
			reg.Gauge(fmt.Sprintf("pp_park_occupancy_slots{%s}", plbl), "payloads currently parked", func() float64 { return float64(prog.Occupancy()) })
		}
	}
	for _, s := range f.sinks {
		s := s
		lbl := fmt.Sprintf("{sink=%q}", s.Name)
		reg.Counter("pp_sink_delivered_total"+lbl, "in-window deliveries at the sink", func() uint64 { return s.Delivered })
	}
}

// observeController merges the controller into the observability
// layer: decisions land on a dedicated "controller" trace track in
// the same sim-time clock domain as data-plane spans, and the tick/
// decision totals join the metrics registry. Controlled fabrics
// always run serial (the presets force one partition), so decisions
// record through partition 0's single-writer recorder.
func (f *Fabric) observeController(c *ctrl.Controller) {
	if f.obs == nil {
		return
	}
	if f.obs.reg != nil {
		c.RegisterMetrics(f.obs.reg)
	}
	tr := f.obs.trace
	if tr == nil {
		return
	}
	rec := f.obs.recs[0]
	track := tr.Intern("controller")
	c.SetObserver(func(at int64, kind, target string) {
		// Kind and target come from small closed sets; interning is a
		// map hit after each set member's first decision.
		rec.Emit(obs.Event{At: at, Track: track, Kind: obs.KindDecision, Name: tr.Intern(kind), ID: int64(tr.Intern(target))})
	})
}

// progCounts is the park-relevant slice of a switch's program counters,
// summed across its programs; the traced handler diffs it around every
// injection to learn what the dataplane just did.
type progCounts struct {
	splits, merges, evictions uint64
}

func (n *SwitchNode) progCounts() progCounts {
	var c progCounts
	for _, pr := range n.progs {
		c.splits += pr.C.Splits.Value()
		c.merges += pr.C.Merges.Value()
		c.evictions += pr.C.Evictions.Value()
	}
	return c
}

// dropName interns a drop reason through the per-node cache. Reasons
// are a small closed set (core's Drop* constants), so the map lookup
// is the steady-state cost; the Intern call happens once per reason.
func (n *SwitchNode) dropName(reason string) uint16 {
	id, ok := n.dropNames[reason]
	if !ok {
		id = n.trace.Intern(reason)
		n.dropNames[reason] = id
	}
	return id
}

// handleTraced is handle with flight-recorder emission: park, merge
// and eviction events are recovered from program-counter deltas around
// the injection, drops and explicit-drop consumption record their
// reason, and everything is stamped with the engine's sim clock.
func (n *SwitchNode) handleTraced(p Parcel, in rmt.PortID) {
	if n.WireParse {
		if !n.reparse(&p, in) {
			n.rec.Emit(obs.Event{At: n.eng.Now(), Track: n.trk, Kind: obs.KindDrop, Name: n.dropName("wire parse error"), ID: p.Born})
			n.dropOf(in)(p, "wire parse error")
			return
		}
	}
	pre := n.progCounts()
	ok, reason := n.SW.InjectReuse(p.Pkt, in, &n.em)
	post := n.progCounts()
	at := n.eng.Now()
	if d := post.splits - pre.splits; d > 0 {
		n.rec.Emit(obs.Event{At: at, Track: n.trk, Kind: obs.KindPark, ID: p.Born, Arg: int64(d)})
	}
	if d := post.merges - pre.merges; d > 0 {
		n.rec.Emit(obs.Event{At: at, Track: n.trk, Kind: obs.KindMerge, ID: p.Born, Arg: int64(d)})
	}
	if d := post.evictions - pre.evictions; d > 0 {
		n.rec.Emit(obs.Event{At: at, Track: n.trk, Kind: obs.KindEvict, ID: p.Born, Arg: int64(d)})
	}
	if !ok {
		if reason != core.DropExplicitDrop {
			n.rec.Emit(obs.Event{At: at, Track: n.trk, Kind: obs.KindDrop, Name: n.dropName(reason), ID: p.Born})
			n.dropOf(in)(p, reason)
		} else {
			n.rec.Emit(obs.Event{At: at, Track: n.trk, Kind: obs.KindConsume, ID: p.Born})
			n.consumedOf(in)(p)
		}
		return
	}
	p.Pkt = n.em.Pkt
	p.egress = n.em.Port
	n.eng.ScheduleParcel(n.em.LatencyNs, n.routeFns[in], p)
}
