package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/payloadpark/payloadpark/internal/ctrl"
)

// The result types are part of the machine-readable surface: ppbench
// -json emits them for every experiment family. These goldens pin the
// serialized field names so a rename breaks loudly, not in a consumer's
// dashboard.

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestResultJSONGolden(t *testing.T) {
	r := Result{
		Name: "golden", SendGbps: 4, GoodputGbps: 0.25, ToNFGbps: 3.5, ToNFMpps: 0.5,
		AvgLatencyUs: 5.5, P99LatencyUs: 7, MaxLatencyUs: 8, JitterUs: 2.5,
		LatencyCDF: []CDFPoint{{Q: 0.5, LatencyUs: 5}},
		Delivered:  100, UnintendedDropRate: 0.001, NFDrops: 3,
		PCIeGbps: 7, PCIeUtilPct: 10,
		Splits: 90, Merges: 89, Evictions: 1, Premature: 0, OccupiedSkips: 2,
		SmallSkips: 8, ExplicitDrops: 4, Healthy: true, SRAMPct: 17.5,
		PerCore: []CoreStat{{Served: 50, RxDrops: 1, StageDrops: 0, PeakQueue: 9}},
	}
	want := `{"name":"golden","send_gbps":4,"goodput_gbps":0.25,"to_nf_gbps":3.5,` +
		`"to_nf_mpps":0.5,"avg_latency_us":5.5,"p99_latency_us":7,"max_latency_us":8,` +
		`"jitter_us":2.5,"latency_cdf":[{"q":0.5,"latency_us":5}],"delivered":100,` +
		`"unintended_drop_rate":0.001,"nf_drops":3,"pcie_gbps":7,"pcie_util_pct":10,` +
		`"splits":90,"merges":89,"evictions":1,"premature":0,"occupied_skips":2,` +
		`"small_skips":8,"explicit_drops":4,"healthy":true,"sram_pct":17.5,` +
		`"per_core":[{"served":50,"rx_drops":1,"stage_drops":0,"peak_queue":9}]}`
	if got := marshal(t, r); got != want {
		t.Errorf("Result JSON drifted:\n got %s\nwant %s", got, want)
	}
}

func TestMultiServerResultJSONGolden(t *testing.T) {
	r := MultiServerResult{
		PerServer:  []Result{{Name: "server-1", GoodputGbps: 6.6, Healthy: true}},
		SRAMAvgPct: 25.6, SRAMPeakPct: 29.3,
	}
	got := marshal(t, r)
	want := `{"per_server":[{"name":"server-1","send_gbps":0,"goodput_gbps":6.6,` +
		`"to_nf_gbps":0,"to_nf_mpps":0,"avg_latency_us":0,"p99_latency_us":0,` +
		`"max_latency_us":0,"jitter_us":0,"delivered":0,"unintended_drop_rate":0,` +
		`"nf_drops":0,"pcie_gbps":0,"pcie_util_pct":0,"splits":0,"merges":0,` +
		`"evictions":0,"premature":0,"occupied_skips":0,"small_skips":0,` +
		`"explicit_drops":0,"healthy":true,"sram_pct":0}],` +
		`"sram_avg_pct":25.6,"sram_peak_pct":29.3}`
	if got != want {
		t.Errorf("MultiServerResult JSON drifted:\n got %s\nwant %s", got, want)
	}
}

func TestFabricResultJSONGolden(t *testing.T) {
	r := FabricResult{
		Mode:  "edge",
		Flows: []FlowResult{{Name: "leaf0->nf1", SendGbps: 11, GoodputGbps: 1.2, ToNFGbps: 9, ToNFMpps: 3.5, AvgLatencyUs: 6, MaxLatencyUs: 9, Delivered: 42}},
		Links: []LinkStats{{Name: "leaf0->spine0", TxPackets: 10, TxBits: 80, Drops: 1, Lost: 0, UtilPct: 50}},
		Switches: []SwitchStats{{Name: "leaf0", Rx: 10, Tx: 9, Drops: 1, Splits: 5,
			Merges: 4, Evictions: 1, Premature: 0, OccupiedSkips: 0, SmallSkips: 2,
			Occupancy: 1, SRAMAvgPct: 17.5}},
		SendGbps: 44, GoodputGbps: 4.8, AvgLatencyUs: 6.5,
		SentWindow: 1000, UnintendedDrops: 2, UnintendedDropRate: 0.002,
		Healthy: false, PhaseDelivered: [3]uint64{1, 2, 3},
	}
	got := marshal(t, r)
	// encoding/json escapes '>' in strings (>) by default.
	want := `{"mode":"edge",` +
		`"flows":[{"name":"leaf0-\u003enf1","send_gbps":11,"goodput_gbps":1.2,"to_nf_gbps":9,` +
		`"to_nf_mpps":3.5,"avg_latency_us":6,"max_latency_us":9,"delivered":42}],` +
		`"links":[{"name":"leaf0-\u003espine0","tx_packets":10,"tx_bits":80,"drops":1,"lost":0,"util_pct":50}],` +
		`"switches":[{"name":"leaf0","rx":10,"tx":9,"drops":1,"splits":5,"merges":4,` +
		`"evictions":1,"premature":0,"occupied_skips":0,"small_skips":2,"occupancy":1,"sram_avg_pct":17.5}],` +
		`"send_gbps":44,"goodput_gbps":4.8,"avg_latency_us":6.5,` +
		`"sent_window":1000,"unintended_drops":2,"unintended_drop_rate":0.002,` +
		`"healthy":false,"phase_delivered":[1,2,3]}`
	if got != want {
		t.Errorf("FabricResult JSON drifted:\n got %s\nwant %s", got, want)
	}
}

// TestControlReportJSONGolden pins the control-plane section — the
// adaptive mode-switch timeline of a testbed run and the decision
// timeline of a fabric run share ctrl.Report — as it appears embedded in
// Result ("control" key, omitted when no controller ran).
func TestControlReportJSONGolden(t *testing.T) {
	r := Result{
		Name: "golden-ctrl", Healthy: true,
		Control: &ctrl.Report{
			Ticks: 40, PeriodNs: 250000,
			ExpiryChanges: 2,
			Decisions: []ctrl.Decision{
				{AtNs: 4250000, Kind: "backoff", Target: "adaptive", Detail: "12 premature evictions/tick; expiry 1 -> 12"},
				{AtNs: 5000000, Kind: "resume", Target: "adaptive", Detail: "calm for 3 ticks; expiry 12 -> 1"},
			},
		},
	}
	got := marshal(t, r)
	want := `{"name":"golden-ctrl","send_gbps":0,"goodput_gbps":0,"to_nf_gbps":0,` +
		`"to_nf_mpps":0,"avg_latency_us":0,"p99_latency_us":0,"max_latency_us":0,` +
		`"jitter_us":0,"delivered":0,"unintended_drop_rate":0,"nf_drops":0,` +
		`"pcie_gbps":0,"pcie_util_pct":0,"splits":0,"merges":0,"evictions":0,` +
		`"premature":0,"occupied_skips":0,"small_skips":0,"explicit_drops":0,` +
		`"healthy":true,"sram_pct":0,` +
		`"control":{"ticks":40,"period_ns":250000,"reroutes":0,"recoveries":0,` +
		`"rebalances":0,"expiry_changes":2,"demotions":0,"restorations":0,` +
		`"decisions":[` +
		`{"at_ns":4250000,"kind":"backoff","target":"adaptive","detail":"12 premature evictions/tick; expiry 1 -\u003e 12"},` +
		`{"at_ns":5000000,"kind":"resume","target":"adaptive","detail":"calm for 3 ticks; expiry 12 -\u003e 1"}]}}`
	if got != want {
		t.Errorf("Result control JSON drifted:\n got %s\nwant %s", got, want)
	}
	// Absent controller: the key is omitted entirely.
	plain := marshal(t, Result{Name: "golden-ctrl", Healthy: true})
	if strings.Contains(plain, `"control"`) {
		t.Errorf("control key present without a controller: %s", plain)
	}
}

// TestResultJSONRoundTrip guards against tag collisions: a marshaled
// result must unmarshal back to the same value.
func TestResultJSONRoundTrip(t *testing.T) {
	r := Result{Name: "rt", GoodputGbps: 1.5, Splits: 7, Healthy: true,
		LatencyCDF: []CDFPoint{{Q: 0.99, LatencyUs: 12}},
		PerCore:    []CoreStat{{Served: 3}}}
	var back Result
	if err := json.Unmarshal([]byte(marshal(t, r)), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != r.Name || back.GoodputGbps != r.GoodputGbps ||
		back.Splits != r.Splits || !back.Healthy ||
		len(back.LatencyCDF) != 1 || back.LatencyCDF[0].LatencyUs != 12 ||
		len(back.PerCore) != 1 || back.PerCore[0].Served != 3 {
		t.Errorf("round trip lost data: %+v", back)
	}
}
