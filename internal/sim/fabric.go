package sim

import (
	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/obs"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/stats"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// Fabric is a graph of simulation nodes — switches, NF servers, traffic
// sources and sinks — connected by unidirectional Links. It generalizes
// the hard-coded single-switch testbed: the canonical presets
// (RunTestbed, RunMultiServer) build one switch with its three cables,
// while the leaf-spine preset (RunLeafSpine) builds a multi-hop fabric
// with per-switch PayloadPark programs and static route tables.
//
// By default a Fabric shares one single-threaded discrete-event Engine;
// all nodes schedule onto the same clock, so runs stay deterministic
// regardless of topology size. SetPartitions shards the fabric across
// several engines — one goroutine each, conservatively synchronized on
// link propagation delay (partition.go) — with byte-identical results.
type Fabric struct {
	eng      *Engine
	switches []*SwitchNode
	links    []*Link
	sources  []*SourceNode
	sinks    []*SinkNode

	// Partitioned execution (empty on a serial fabric): per-partition
	// engines, the directed mailbox matrix, the barrier merge scratch,
	// the cut-crossing link counter, and the conservative lookahead (the
	// minimum propagation delay over cut-crossing links).
	parts        []*Engine
	mail         [][]mailbox
	flushBuf     []crossMsg
	lanes        int32
	minCrossProp int64

	// obs is the run's observability state (nil when disabled); see
	// EnableObs in observe.go.
	obs *fabricObs
}

// NewFabric returns an empty fabric at time zero.
func NewFabric() *Fabric {
	return &Fabric{eng: NewEngine()}
}

// Engine exposes the fabric's event engine (for preset measurement
// closures and custom scheduling).
func (f *Fabric) Engine() *Engine { return f.eng }

// Run executes the fabric until the clock passes until.
func (f *Fabric) Run(until int64) {
	if len(f.parts) <= 1 {
		f.eng.Run(until)
		return
	}
	f.runParallel(until)
}

// AddSwitch adds a switch node with an empty dataplane on partition 0.
// Attach programs and routes through node.SW; cable its egress ports with
// SetOut.
func (f *Fabric) AddSwitch(name string) *SwitchNode {
	return f.AddSwitchAt(name, 0)
}

// AddSwitchAt is AddSwitch placed on partition part: all of the node's
// events — ingress handling, traversal latency, egress serialization on
// its cables — run on that partition's engine.
func (f *Fabric) AddSwitchAt(name string, part int) *SwitchNode {
	n := &SwitchNode{f: f, eng: f.PartitionEngine(part), Name: name, SW: core.NewSwitch(name)}
	n.buf = make([]byte, 0, maxWireFrame)
	f.switches = append(f.switches, n)
	return n
}

// NewLink builds a registered link delivering to the given handler, with
// both endpoints on partition 0. Registration is what makes the link show
// up in per-hop reports; the link itself behaves exactly like NewLink's.
func (f *Fabric) NewLink(name string, bps float64, propNs int64, capBytes int, deliver func(Parcel), onDrop func(Parcel, string)) *Link {
	return f.NewLinkAt(name, bps, propNs, capBytes, deliver, onDrop, 0, 0)
}

// NewLinkAt is NewLink with placed endpoints: queueing and serialization
// run on partition src (the sender's side of the cable); delivery fires
// on partition dst. When they differ the link crosses a cut — completed
// transmissions post to the src->dst mailbox and arrive at the barrier,
// which requires a positive propagation delay (the lookahead).
func (f *Fabric) NewLinkAt(name string, bps float64, propNs int64, capBytes int, deliver func(Parcel), onDrop func(Parcel, string), src, dst int) *Link {
	l := NewLink(f.PartitionEngine(src), bps, propNs, capBytes, deliver, onDrop)
	l.Name = name
	if src != dst {
		f.bindCross(l, src, dst)
	}
	f.links = append(f.links, l)
	return l
}

// AddSource registers a paced traffic source on partition 0. Configure
// its fields, then Start it.
func (f *Fabric) AddSource(name string, gen trafficgen.Source, out *Link, sendBps float64) *SourceNode {
	return f.AddSourceAt(name, gen, out, sendBps, 0)
}

// AddSourceAt is AddSource placed on partition part (a source must share
// its outgoing link's transmit partition).
func (f *Fabric) AddSourceAt(name string, gen trafficgen.Source, out *Link, sendBps float64, part int) *SourceNode {
	s := &SourceNode{eng: f.PartitionEngine(part), Name: name, Gen: gen, Out: out, SendBps: sendBps}
	s.sendFn = s.sendNext
	f.sources = append(f.sources, s)
	return s
}

// AddSink registers a terminal sink recording delivery latency on
// partition 0.
func (f *Fabric) AddSink(name string, windowEnd int64, recycle func(*packet.Packet)) *SinkNode {
	return f.AddSinkAt(name, windowEnd, recycle, 0)
}

// AddSinkAt is AddSink placed on partition part (a sink must share the
// delivery partition of the link feeding it).
func (f *Fabric) AddSinkAt(name string, windowEnd int64, recycle func(*packet.Packet), part int) *SinkNode {
	s := &SinkNode{eng: f.PartitionEngine(part), Name: name, WindowEnd: windowEnd, Recycle: recycle}
	f.sinks = append(f.sinks, s)
	return s
}

// LinkStats is one link's per-hop report.
type LinkStats struct {
	Name      string `json:"name"`
	TxPackets uint64 `json:"tx_packets"`
	TxBits    uint64 `json:"tx_bits"`
	Drops     uint64 `json:"drops"`
	Lost      uint64 `json:"lost"`
	// UtilPct is the fraction of the reported window the link spent
	// transmitting, as a percentage of line rate.
	UtilPct float64 `json:"util_pct"`
}

// LinkReports returns per-hop link statistics in wiring order, with
// utilization computed over elapsedNs (pass the measurement window, or
// Engine().Now() for the whole run).
func (f *Fabric) LinkReports(elapsedNs int64) []LinkStats {
	out := make([]LinkStats, 0, len(f.links))
	for _, l := range f.links {
		out = append(out, LinkStats{
			Name:      l.Name,
			TxPackets: l.Tx.Value(),
			TxBits:    l.TxBits.Value(),
			Drops:     l.Drops.Value(),
			Lost:      l.Lost.Value(),
			UtilPct:   100 * l.Utilization(elapsedNs),
		})
	}
	return out
}

// SwitchStats is one switch node's per-hop report: forwarding counters
// plus the PayloadPark counters summed over its installed programs.
type SwitchStats struct {
	Name  string `json:"name"`
	Rx    uint64 `json:"rx"`
	Tx    uint64 `json:"tx"`
	Drops uint64 `json:"drops"`
	// Program counters (zero on pure L2 switches).
	Splits        uint64 `json:"splits"`
	Merges        uint64 `json:"merges"`
	Evictions     uint64 `json:"evictions"`
	Premature     uint64 `json:"premature"`
	OccupiedSkips uint64 `json:"occupied_skips"`
	SmallSkips    uint64 `json:"small_skips"`
	// Occupancy is the number of parked payloads still held at report
	// time (orphan detection in failure scenarios).
	Occupancy int `json:"occupancy"`
	// SRAMAvgPct is the average per-stage SRAM utilization of pipe 0.
	SRAMAvgPct float64 `json:"sram_avg_pct"`
}

// SwitchReports returns per-switch statistics in creation order.
func (f *Fabric) SwitchReports() []SwitchStats {
	out := make([]SwitchStats, 0, len(f.switches))
	for _, n := range f.switches {
		st := SwitchStats{
			Name:  n.Name,
			Rx:    n.SW.RxPackets(),
			Tx:    n.SW.TxPackets(),
			Drops: n.SW.TotalDrops(),
		}
		for _, prog := range n.SW.Programs() {
			st.Splits += prog.C.Splits.Value()
			st.Merges += prog.C.Merges.Value()
			st.Evictions += prog.C.Evictions.Value()
			st.Premature += prog.C.PrematureEvictions.Value()
			st.OccupiedSkips += prog.C.OccupiedSkips.Value()
			st.SmallSkips += prog.C.SmallPayloadSkips.Value()
			st.Occupancy += prog.Occupancy()
		}
		if len(n.SW.Programs()) > 0 {
			st.SRAMAvgPct = n.SW.Pipe(0).Resources().SRAMAvgPct
		}
		out = append(out, st)
	}
	return out
}

// maxWireFrame sizes the per-switch serialization scratch of wire-parse
// hops (headers + 1500 B payload + cascaded PayloadPark headers).
const maxWireFrame = 2048

// portHooks is the per-ingress-port drop handling of a switch node: a
// shared switch (the multi-server preset) charges each tenant's drops to
// that tenant's own counters and packet pool.
type portHooks struct {
	onDrop     func(Parcel, string)
	onConsumed func(Parcel)
}

// SwitchNode wraps one core.Switch into the fabric: per-port cables,
// static routes (the switch's own L2 table), per-ingress-port drop
// handling, and optional byte-level re-parsing between cascaded
// programmable switches.
type SwitchNode struct {
	f    *Fabric
	eng  *Engine
	Name string
	// SW is the behavioural dataplane. Attach programs and routes
	// directly (AttachPayloadPark, AddL2Route).
	SW *core.Switch
	// WireParse makes ingress byte-accurate: arriving packets are
	// serialized and re-parsed with this switch's per-port header
	// geometry, exactly as frames cross real inter-switch cables. This is
	// what lets cascaded PayloadPark programs treat an upstream program's
	// header as opaque payload (§7 striping); single-switch topologies
	// leave it off and pass parsed packets straight through, the fast
	// path the presets rely on. Re-parsing recycles packet objects and
	// the serialization scratch per switch, so steady state allocates
	// nothing.
	WireParse bool
	// OnDrop receives unintended switch drops (unknown MAC, premature
	// eviction, bad tag); OnConsumed receives intended explicit-drop
	// consumption. Required unless every cabled ingress port overrides
	// them via IngressWith.
	OnDrop     func(Parcel, string)
	OnConsumed func(Parcel)

	out      [core.NumPorts]*Link
	hooks    [core.NumPorts]portHooks
	ingress  [core.NumPorts]func(Parcel)
	routeFns [core.NumPorts]func(Parcel)

	em   core.Emission
	buf  []byte
	pool []*packet.Packet

	// Flight-recorder state (nil/zero unless the fabric's EnableObs ran
	// with a trace): the partition's recorder, this node's interned
	// track id, the cached program list for counter-delta detection,
	// and the per-node drop-reason intern cache.
	rec       *obs.Recorder
	trace     *obs.Trace
	trk       uint16
	progs     []*core.Program
	dropNames map[string]uint16
}

// SetOut cables egress port to a link. Emissions routed to an uncabled
// port are dropped with reason "no route".
func (n *SwitchNode) SetOut(port rmt.PortID, l *Link) { n.out[port] = l }

// Engine returns the engine the node's events run on — its partition's
// engine, or the fabric engine on a serial fabric. Preset closures that
// observe a node's deliveries must read the clock and schedule here.
func (n *SwitchNode) Engine() *Engine { return n.eng }

// Ingress returns the delivery handler for packets arriving on port,
// using the node-level drop hooks. The handler is built once per port;
// links deliver through it without per-packet allocation.
func (n *SwitchNode) Ingress(port rmt.PortID) func(Parcel) {
	return n.IngressWith(port, nil, nil)
}

// IngressWith is Ingress with per-port drop handling: drops of packets
// that entered on this port go to onDrop/onConsumed instead of the
// node-level hooks (nil falls back). The multi-server preset uses this to
// charge each tenant's drops to its own counters.
func (n *SwitchNode) IngressWith(port rmt.PortID, onDrop func(Parcel, string), onConsumed func(Parcel)) func(Parcel) {
	if onDrop != nil || onConsumed != nil {
		n.hooks[port] = portHooks{onDrop: onDrop, onConsumed: onConsumed}
	}
	if h := n.ingress[port]; h != nil {
		return h
	}
	h := func(p Parcel) { n.handle(p, port) }
	n.ingress[port] = h
	n.routeFns[port] = func(p Parcel) { n.route(p, port) }
	return h
}

func (n *SwitchNode) dropOf(port rmt.PortID) func(Parcel, string) {
	if h := n.hooks[port].onDrop; h != nil {
		return h
	}
	return n.OnDrop
}

func (n *SwitchNode) consumedOf(port rmt.PortID) func(Parcel) {
	if h := n.hooks[port].onConsumed; h != nil {
		return h
	}
	return n.OnConsumed
}

// handle runs one arriving packet through the switch and schedules its
// emission after the traversal latency. With the flight recorder on,
// the traced variant (observe.go) takes over after one predictable
// branch — the only per-packet cost tracing adds to a disabled run.
func (n *SwitchNode) handle(p Parcel, in rmt.PortID) {
	if n.rec != nil {
		n.handleTraced(p, in)
		return
	}
	if n.WireParse {
		if !n.reparse(&p, in) {
			n.dropOf(in)(p, "wire parse error")
			return
		}
	}
	ok, reason := n.SW.InjectReuse(p.Pkt, in, &n.em)
	if !ok {
		if reason != core.DropExplicitDrop {
			n.dropOf(in)(p, reason)
		} else {
			n.consumedOf(in)(p)
		}
		return
	}
	p.Pkt = n.em.Pkt
	p.egress = n.em.Port
	n.eng.ScheduleParcel(n.em.LatencyNs, n.routeFns[in], p)
}

// route forwards an emission onto the cable of its egress port. in is the
// ingress port the packet arrived on, which owns the drop handling.
func (n *SwitchNode) route(p Parcel, in rmt.PortID) {
	if int(p.egress) >= len(n.out) || n.out[p.egress] == nil {
		n.dropOf(in)(p, "no route")
		return
	}
	n.out[p.egress].Send(p)
}

// reparse crosses the wire boundary: the parcel's packet is serialized
// into the node's scratch and re-parsed with this switch's per-port
// header geometry, so a downstream program sees exactly the bytes an
// upstream one emitted (its PayloadPark header becomes opaque payload).
// The retired packet object joins the node pool and backs a later
// re-parse — steady state allocates nothing.
func (n *SwitchNode) reparse(p *Parcel, in rmt.PortID) bool {
	n.buf = p.Pkt.AppendSerialize(n.buf[:0])
	var np *packet.Packet
	if k := len(n.pool); k > 0 {
		np = n.pool[k-1]
		n.pool = n.pool[:k-1]
	} else {
		np = &packet.Packet{}
	}
	if err := packet.ParseAtInto(np, n.buf, n.SW.PPOffset(in)); err != nil {
		n.pool = append(n.pool, np)
		return false
	}
	n.pool = append(n.pool, p.Pkt)
	p.Pkt = np
	return true
}

// SourceNode paces a traffic source at a constant bit rate over frame
// bits, marking parcels born inside [WindowStart, WindowEnd) as
// in-window and stopping once the next departure would pass StopAt.
type SourceNode struct {
	eng  *Engine
	Name string
	Gen  trafficgen.Source
	Out  *Link
	// SendBps is the offered load in frame bits/second.
	SendBps float64
	// WindowStart/WindowEnd bound the measurement window for in-window
	// marking; StopAt is the generation horizon.
	WindowStart, WindowEnd, StopAt int64
	// OnSend, when set, observes every in-window departure (offered-load
	// accounting).
	OnSend func(Parcel)

	sendFn func()
	rec    *obs.Recorder
	trk    uint16
}

// Start schedules the first departure at absolute time at.
func (s *SourceNode) Start(at int64) { s.eng.ScheduleAt(at, s.sendFn) }

func (s *SourceNode) sendNext() {
	pkt := s.Gen.Next()
	now := s.eng.Now()
	p := Parcel{Pkt: pkt, Born: now, InWindow: now >= s.WindowStart && now < s.WindowEnd}
	if p.InWindow && s.OnSend != nil {
		s.OnSend(p)
	}
	if s.rec != nil {
		s.rec.Emit(obs.Event{At: now, Track: s.trk, Kind: obs.KindInject, ID: p.Born, Arg: int64(pkt.Len())})
	}
	s.Out.Send(p)
	gapNs := int64(float64(pkt.Len()*8) / s.SendBps * 1e9)
	if gapNs < 1 {
		gapNs = 1
	}
	if now+gapNs < s.StopAt {
		s.eng.Schedule(gapNs, s.sendFn)
	}
}

// SinkNode terminates a path: in-window deliveries before WindowEnd are
// counted and their end-to-end latency observed, and every packet is
// recycled to its source pool.
type SinkNode struct {
	eng  *Engine
	Name string
	// WindowEnd caps measurement; late arrivals still recycle.
	WindowEnd int64
	// Recycle returns retired packets to their generator.
	Recycle func(*packet.Packet)
	// Hist, when set, also feeds a latency histogram (P99 reporting).
	Hist *stats.Histogram

	Delivered uint64
	Latency   stats.Summary

	rec *obs.Recorder
	trk uint16
}

// Receive is the link-delivery handler.
func (s *SinkNode) Receive(p Parcel) {
	if s.rec != nil {
		s.rec.Emit(obs.Event{At: s.eng.Now(), Track: s.trk, Kind: obs.KindSink, ID: p.Born, Arg: s.eng.Now() - p.Born})
	}
	if p.InWindow && s.eng.Now() <= s.WindowEnd {
		s.Delivered++
		us := float64(s.eng.Now()-p.Born) / 1e3
		s.Latency.Observe(us)
		if s.Hist != nil {
			s.Hist.Observe(us)
		}
	}
	s.Recycle(p.Pkt)
}
