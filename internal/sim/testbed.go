package sim

import (
	"fmt"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/ctrl"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/stats"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// Canonical single-server topology (paper Fig. 5): the traffic generator
// feeds the switch over two ports; the NF server hangs off one port; the
// generator's receive side is the sink.
var (
	MACGen  = packet.MAC{0x02, 0, 0, 0, 0, 0x01}
	MACNF   = packet.MAC{0x02, 0, 0, 0, 0, 0x02}
	MACSink = packet.MAC{0x02, 0, 0, 0, 0, 0x03}
)

const (
	portSplit = rmt.PortID(0)
	portNF    = rmt.PortID(1)
	portSink  = rmt.PortID(2)
)

// HealthyDropRate is the paper's health criterion: "We consider the system
// to be healthy when the packet drop rate is below 0.1%" (§6.1).
const HealthyDropRate = 0.001

// TestbedConfig describes one simulated deployment run.
type TestbedConfig struct {
	// Name labels the run in results.
	Name string
	// LinkBps is the switch<->NF-server line rate (10 or 40 GbE).
	LinkBps float64
	// SendBps is the offered load in frame bits/second.
	SendBps float64
	// Dist draws packet sizes; Flows is the 5-tuple pool size.
	Dist  trafficgen.SizeDist
	Flows int
	// Source, when non-nil, overrides the synthetic generator with an
	// arbitrary packet stream (e.g. a pcap replay). The builder is called
	// once per run so replays start fresh.
	Source func() trafficgen.Source
	// Seed drives all randomness.
	Seed int64
	// BuildChain constructs a fresh NF chain (fresh NF state per run).
	BuildChain func() *nf.Chain
	// Server calibrates the NF server timing.
	Server ServerModel
	// PayloadPark enables the program; PP carries its parameters (ports
	// are overridden to the canonical topology).
	PayloadPark bool
	PP          core.Config
	// Programs attaches declarative table programs (internal/prog specs)
	// beyond — or instead of — the built-in parking program. Each spec's
	// split_port/merge_port default to the canonical generator/NF ports
	// unless pinned in the attachment's Params. Per-program in-window
	// counter deltas land in Result.Programs.
	Programs []ProgramAttachment
	// ExplicitDrop enables the §6.2.4 framework modification.
	ExplicitDrop bool
	// WarmupNs/MeasureNs bound the measurement window.
	WarmupNs  int64
	MeasureNs int64
	// SwitchQueueBytes is the egress buffer per switch port (default 1 MB).
	SwitchQueueBytes int
	// PropNs is the per-link propagation delay (default 500 ns).
	PropNs int64
	// NFLinkLossRate injects random loss on both directions of the
	// switch<->NF link (§7 failure scenarios). Lost split packets orphan
	// their parked payloads; the payload evictor must reclaim them.
	NFLinkLossRate float64
	// Control, when non-nil (and PayloadPark is on), attaches the §7
	// adaptive-eviction control plane: a controller samples the program's
	// premature-eviction counter every Control.PeriodNs and toggles the
	// Expiry threshold between the aggressive and conservative policies.
	// The mode-switch timeline lands in Result.Control. Adaptive is
	// implied — a single-switch deployment has no ECMP groups to manage.
	Control *ctrl.Config
	// Cancel, when non-nil, is polled periodically by the event engine;
	// once it returns true the run stops early and the result is partial.
	// The scenario layer binds it to a context's Done channel.
	Cancel func() bool
	// Obs arms the observability layer (metrics and/or the flight
	// recorder); the zero value keeps it off.
	Obs ObsConfig
}

func (c *TestbedConfig) fillDefaults() {
	if c.Flows == 0 {
		c.Flows = 1024
	}
	if c.SwitchQueueBytes == 0 {
		c.SwitchQueueBytes = 1 << 20
	}
	if c.PropNs == 0 {
		c.PropNs = 500
	}
	if c.WarmupNs == 0 {
		c.WarmupNs = 10e6 // 10 ms
	}
	if c.MeasureNs == 0 {
		c.MeasureNs = 50e6 // 50 ms
	}
	if c.Server.FreqHz == 0 {
		c.Server = DefaultServerModel()
	}
}

// CDFPoint is one quantile of a delivered-latency distribution: Q is the
// cumulative fraction, LatencyUs the latency at that quantile.
type CDFPoint struct {
	Q         float64 `json:"q"`
	LatencyUs float64 `json:"latency_us"`
}

// latencyCDFQuantiles are the quantiles reported in Result.LatencyCDF.
var latencyCDFQuantiles = []float64{0.5, 0.9, 0.95, 0.99, 0.999}

// Result is the outcome of one testbed run, in the units the paper plots.
type Result struct {
	Name string `json:"name"`
	// SendGbps is the measured offered load.
	SendGbps float64 `json:"send_gbps"`
	// GoodputGbps is the paper's goodput: useful-header bits (42 B per
	// packet) delivered to the NF server per second, measured at the
	// switch (§6.1). Multi-server runs instead record the bits that
	// actually crossed the to-NF link (full packet for baseline, header
	// remainder for PayloadPark) and derive the header-unit metric from
	// the delivered packet rate in ToNFMpps.
	GoodputGbps float64 `json:"goodput_gbps"`
	// ToNFGbps / ToNFMpps describe the switch->NF link traffic.
	ToNFGbps float64 `json:"to_nf_gbps"`
	ToNFMpps float64 `json:"to_nf_mpps"`
	// Latency of packets delivered to the sink, microseconds.
	AvgLatencyUs float64 `json:"avg_latency_us"`
	P99LatencyUs float64 `json:"p99_latency_us"`
	MaxLatencyUs float64 `json:"max_latency_us"`
	JitterUs     float64 `json:"jitter_us"` // peak minus average (paper Fig. 7 caption)
	// LatencyCDF samples the delivered-latency histogram at fixed
	// quantiles (empty when nothing was delivered in-window).
	LatencyCDF []CDFPoint `json:"latency_cdf,omitempty"`
	// Delivered counts packets reaching the sink in-window.
	Delivered uint64 `json:"delivered"`
	// UnintendedDropRate is (queue+ring+eviction+stale) drops / sent.
	UnintendedDropRate float64 `json:"unintended_drop_rate"`
	// NFDrops counts intended drops (firewall verdicts) in-window.
	NFDrops uint64 `json:"nf_drops"`
	// PCIe bus traffic at the NF server.
	PCIeGbps    float64 `json:"pcie_gbps"`
	PCIeUtilPct float64 `json:"pcie_util_pct"`
	// PayloadPark counters (deltas over the measurement window).
	Splits        uint64 `json:"splits"`
	Merges        uint64 `json:"merges"`
	Evictions     uint64 `json:"evictions"`
	Premature     uint64 `json:"premature"`
	OccupiedSkips uint64 `json:"occupied_skips"`
	SmallSkips    uint64 `json:"small_skips"`
	ExplicitDrops uint64 `json:"explicit_drops"`
	// Healthy reports the paper's <0.1% unintended-drop criterion.
	Healthy bool `json:"healthy"`
	// Programs reports each attached declarative table program's
	// in-window counter deltas (empty unless TestbedConfig.Programs ran).
	Programs []ProgramCounters `json:"programs,omitempty"`
	// SRAMPct is the average per-stage SRAM utilization of the ingress pipe.
	SRAMPct float64 `json:"sram_pct"`
	// PerCore is the NF server's per-core drop/occupancy record over the
	// whole run (RSS spread, ring-overflow attribution, peak RX backlog).
	PerCore []CoreStat `json:"per_core,omitempty"`
	// Control is the adaptive-eviction control plane's report — the
	// mode-switch decision timeline — when TestbedConfig.Control ran a
	// controller (nil otherwise).
	Control *ctrl.Report `json:"control,omitempty"`
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: send=%.2fGbps goodput=%.3fGbps lat=%.1fus drop=%.4f%% pcie=%.1f%% healthy=%t",
		r.Name, r.SendGbps, r.GoodputGbps, r.AvgLatencyUs, 100*r.UnintendedDropRate, r.PCIeUtilPct, r.Healthy)
}

// RunTestbed simulates one deployment and reports measurements. It is a
// thin preset over Fabric: one switch node with three cables (generator,
// NF server, sink), reproducing the paper's Fig. 5 topology. The wiring
// and scheduling order match the pre-fabric implementation exactly, so
// results are byte-identical (see TestTestbedFabricParity).
func RunTestbed(cfg TestbedConfig) Result {
	cfg.fillDefaults()
	f := NewFabric()
	eng := f.Engine()
	eng.Cancel = cfg.Cancel

	// Behavioural components.
	swn := f.AddSwitch(cfg.Name)
	sw := swn.SW
	sw.AddL2Route(MACNF, portNF)
	sw.AddL2Route(MACSink, portSink)
	sw.AddL2Route(MACGen, portSink) // MAC-swap chains return toward the generator

	var prog *core.Program
	if cfg.PayloadPark {
		pp := cfg.PP
		pp.SplitPort = portSplit
		pp.MergePort = portNF
		recirc := -1
		if pp.Recirculate {
			recirc = 1
		}
		var err error
		prog, err = sw.AttachPayloadPark(pp, recirc)
		if err != nil {
			panic(fmt.Sprintf("sim: attach payloadpark: %v", err))
		}
	}
	insts := attachPrograms(sw, cfg.Programs, portSplit, portNF)

	chain := cfg.BuildChain()
	srv := nf.NewServer(nf.ServerConfig{
		Chain:        chain,
		RewriteMACs:  !chainSwapsMACs(chain),
		NFMAC:        MACNF,
		NextHopMAC:   MACSink,
		ExplicitDrop: cfg.ExplicitDrop,
	})

	var gen trafficgen.Source
	if cfg.Source != nil {
		gen = cfg.Source()
	} else {
		gen = trafficgen.New(trafficgen.Config{
			Sizes: cfg.Dist, Flows: cfg.Flows,
			SrcMAC: MACGen, DstMAC: MACNF,
			DstIP: packet.IPv4Addr{10, 1, 0, 9}, DstPort: 80,
			Seed: cfg.Seed,
		})
	}

	// Packets that reach a terminal point (sink delivery, any drop, NF
	// consumption) are handed back to the generator for reuse: traffic
	// generation allocates nothing in steady state.
	recycle := func(*packet.Packet) {}
	if rec, ok := gen.(interface{ Recycle(*packet.Packet) }); ok {
		recycle = rec.Recycle
	}

	// Measurement state.
	windowStart := cfg.WarmupNs
	windowEnd := cfg.WarmupNs + cfg.MeasureNs
	var (
		sentWindow      uint64
		sentBits        = stats.NewRateMeter(windowStart)
		goodput         = stats.NewRateMeter(windowStart)
		toNF            = stats.NewRateMeter(windowStart)
		pcie            = stats.NewRateMeter(windowStart)
		latencyHist     = stats.NewHistogram(stats.ExponentialBounds(1, 1.122, 120)) // 1 µs .. ~1 s
		nfDrops         uint64
		unintendedDrops uint64
	)

	dropUnintended := func(p Parcel, _ string) {
		if p.InWindow {
			unintendedDrops++
		}
		recycle(p.Pkt)
	}
	// Everything except intended explicit-drop consumption is a failure
	// (premature eviction, bad tag, unknown MAC).
	swn.OnDrop = dropUnintended
	swn.OnConsumed = func(p Parcel) { recycle(p.Pkt) }

	// Wiring, back to front. Return path: server -> link -> switch merge.
	var srvSim *ServerSim

	returnLink := f.NewLink("nf->switch", cfg.LinkBps, cfg.PropNs, cfg.SwitchQueueBytes,
		swn.Ingress(portNF), dropUnintended)
	returnLink.LossRate = cfg.NFLinkLossRate

	srvSim = NewServerSim(eng, cfg.Server, srv, cfg.Seed,
		returnLink.Send,
		dropUnintended,
		func(p Parcel) {
			if p.InWindow {
				nfDrops++
			}
			recycle(p.Pkt)
		},
	)

	// Goodput is measured on delivery over the switch->NF link: useful-
	// header bits that actually reached the NF server (§6.1, including
	// packets the firewall later drops — §6.2.4).
	toNFLink := f.NewLink("switch->nf", cfg.LinkBps, cfg.PropNs, cfg.SwitchQueueBytes,
		func(p Parcel) {
			now := eng.Now()
			if p.InWindow && now >= windowStart && now <= windowEnd {
				goodput.Record(now, packet.HeaderUnitLen*8)
				toNF.Record(now, float64(WireBytes(p.Pkt)*8))
			}
			srvSim.Receive(p)
		}, dropUnintended)
	toNFLink.LossRate = cfg.NFLinkLossRate

	sink := f.AddSink("sink", windowEnd, recycle)
	sink.Hist = latencyHist
	sinkLink := f.NewLink("switch->sink", 2*cfg.LinkBps, cfg.PropNs, 2*cfg.SwitchQueueBytes,
		sink.Receive, dropUnintended)

	swn.SetOut(portNF, toNFLink)
	swn.SetOut(portSink, sinkLink)

	// PCIe utilization: sample the server's cumulative DMA byte counter
	// periodically inside the window.
	var pcieBase uint64
	var pcieSample func()
	pcieSample = func() {
		now := eng.Now()
		if now >= windowStart && now <= windowEnd {
			total := srvSim.PCIeBytes.Value()
			delta := total - pcieBase
			pcieBase = total
			if now > windowStart {
				pcie.Record(now, float64(delta*8))
			}
		}
		if now < windowEnd {
			eng.Schedule(1e6, pcieSample) // 1 ms sampling, like PCM
		}
	}
	eng.ScheduleAt(windowStart, func() { pcieBase = srvSim.PCIeBytes.Value(); pcieSample() })

	// Generator: constant bit rate over frame bits.
	genLink := f.NewLink("gen->switch", 2*cfg.LinkBps, cfg.PropNs, 4<<20,
		swn.Ingress(portSplit), dropUnintended)

	src := f.AddSource("gen", gen, genLink, cfg.SendBps)
	src.WindowStart, src.WindowEnd = windowStart, windowEnd
	src.StopAt = windowEnd + cfg.WarmupNs/2
	src.OnSend = func(p Parcel) {
		sentWindow++
		sentBits.Record(eng.Now(), float64(p.Pkt.Len()*8))
	}

	// Counter snapshot at window start for in-window deltas.
	var snap core.Counters
	var progSnaps []map[string]uint64
	eng.ScheduleAt(windowStart, func() {
		if prog != nil {
			snap = prog.C
		}
		progSnaps = programSnapshots(insts)
	})

	f.EnableObs(cfg.Obs)

	// Adaptive-eviction control plane (single-switch: no groups, the
	// controller only retunes the program's Expiry threshold).
	var controller *ctrl.Controller
	if cfg.Control != nil && prog != nil {
		cc := *cfg.Control
		cc.Adaptive = true
		if cc.Aggressive == 0 {
			cc.Aggressive = prog.MaxExpiry()
		}
		controller = attachController(f, cc, newControlPlant(f, nil), nil, windowEnd+cfg.WarmupNs)
	}

	src.Start(0)
	// Drain period after the window so in-flight packets can land.
	f.Run(windowEnd + cfg.WarmupNs)

	sentBits.CloseAt(windowEnd)
	goodput.CloseAt(windowEnd)
	toNF.CloseAt(windowEnd)
	pcie.CloseAt(windowEnd)

	res := Result{
		Name:        cfg.Name,
		SendGbps:    sentBits.Gbps(),
		GoodputGbps: goodput.Gbps(),
		ToNFGbps:    toNF.Gbps(),
		ToNFMpps:    goodput.Mpps(),
		Delivered:   sink.Delivered,
		NFDrops:     nfDrops,
		PCIeGbps:    pcie.Gbps(),
		PCIeUtilPct: 100 * pcie.Gbps() * 1e9 / cfg.Server.PCIeBps,
		PerCore:     srvSim.CoreStats(),
	}
	res.AvgLatencyUs = sink.Latency.Mean()
	res.MaxLatencyUs = sink.Latency.Max()
	res.JitterUs = sink.Latency.Max() - sink.Latency.Mean()
	res.P99LatencyUs = latencyHist.Quantile(0.99)
	if latencyHist.Count() > 0 {
		res.LatencyCDF = make([]CDFPoint, len(latencyCDFQuantiles))
		for i, q := range latencyCDFQuantiles {
			res.LatencyCDF[i] = CDFPoint{Q: q, LatencyUs: latencyHist.Quantile(q)}
		}
	}
	if sentWindow > 0 {
		res.UnintendedDropRate = float64(unintendedDrops) / float64(sentWindow)
	}
	res.Healthy = res.UnintendedDropRate < HealthyDropRate
	if prog != nil {
		res.Splits = prog.C.Splits.Value() - snap.Splits.Value()
		res.Merges = prog.C.Merges.Value() - snap.Merges.Value()
		res.Evictions = prog.C.Evictions.Value() - snap.Evictions.Value()
		res.Premature = prog.C.PrematureEvictions.Value() - snap.PrematureEvictions.Value()
		res.OccupiedSkips = prog.C.OccupiedSkips.Value() - snap.OccupiedSkips.Value()
		res.SmallSkips = prog.C.SmallPayloadSkips.Value() - snap.SmallPayloadSkips.Value()
		res.ExplicitDrops = prog.C.ExplicitDrops.Value() - snap.ExplicitDrops.Value()
		res.SRAMPct = sw.Pipe(0).Resources().SRAMAvgPct
	}
	if len(insts) > 0 {
		res.Programs = programReports("", insts, progSnaps)
		if res.SRAMPct == 0 {
			res.SRAMPct = sw.Pipe(0).Resources().SRAMAvgPct
		}
	}
	if controller != nil {
		res.Control = controller.Snapshot()
	}
	return res
}

// chainSwapsMACs reports whether the chain already handles L2 return
// addressing (MAC-swapping NFs), in which case the framework must not
// rewrite MACs.
func chainSwapsMACs(c *nf.Chain) bool {
	switch c.Name() {
	case "MACSwap", "NF-Light", "NF-Medium", "NF-Heavy":
		return true
	}
	return false
}
