package sim

import (
	"fmt"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/ctrl"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
)

// controlPlant adapts a Fabric to ctrl.Plant: telemetry reads walk the
// fabric's switch and link inventories in wiring order (so controller
// decisions are deterministic), and pushes land on the live switch
// programs and ECMP group tables — the same writes a switch CPU would
// issue over PCIe.
type controlPlant struct {
	f *Fabric
	// transit classifies a program as transit parking (demotable); nil
	// means no program is (single-switch deployments).
	transit func(prog *core.Program) bool

	nodes  map[string]*SwitchNode
	groups map[string]*groupRoute

	// Per-link TxBits at the previous tick, for per-tick utilization.
	lastTxBits []uint64
	lastNow    int64
}

// groupRoute binds a managed ECMP group to its switch table entry.
type groupRoute struct {
	node *SwitchNode
	dst  packet.MAC
	// ports is the full configured membership (name -> egress port);
	// pushes install subsets of it.
	ports map[string]rmt.PortID
}

func newControlPlant(f *Fabric, transit func(prog *core.Program) bool) *controlPlant {
	p := &controlPlant{
		f:       f,
		transit: transit,
		nodes:   make(map[string]*SwitchNode),
		groups:  make(map[string]*groupRoute),
	}
	for _, n := range f.switches {
		p.nodes[n.Name] = n
	}
	return p
}

// addGroup registers a managed ECMP group (already installed on the
// switch) so PushGroup can rewrite it.
func (p *controlPlant) addGroup(name string, node *SwitchNode, dst packet.MAC, ports map[string]rmt.PortID) {
	p.groups[name] = &groupRoute{node: node, dst: dst, ports: ports}
}

// ReadTelemetry implements ctrl.Plant.
func (p *controlPlant) ReadTelemetry(t *ctrl.Telemetry) {
	now := p.f.eng.Now()
	t.Switches = t.Switches[:0]
	for _, n := range p.f.switches {
		st := ctrl.SwitchTelem{Name: n.Name}
		for _, prog := range n.SW.Programs() {
			st.Premature += prog.C.PrematureEvictions.Value()
			st.Slots += prog.Config().Slots
			if out := prog.C.Outstanding(); out > 0 {
				st.Occupancy += int(out)
			}
			if p.transit != nil && p.transit(prog) {
				st.Demotable = true
			}
		}
		t.Switches = append(t.Switches, st)
	}

	if len(p.lastTxBits) != len(p.f.links) {
		p.lastTxBits = make([]uint64, len(p.f.links))
	}
	dt := now - p.lastNow
	t.Links = t.Links[:0]
	for i, l := range p.f.links {
		tx := l.TxBits.Value()
		lt := ctrl.LinkTelem{Name: l.Name, Down: l.Down, QueueBytes: l.QueuedBytes()}
		if dt > 0 {
			lt.UtilPct = 100 * float64(tx-p.lastTxBits[i]) / (l.Bps * float64(dt) / 1e9)
		}
		p.lastTxBits[i] = tx
		t.Links = append(t.Links, lt)
	}
	p.lastNow = now
}

// PushExpiry implements ctrl.Plant: every program on the switch adopts
// the new Expiry threshold for future claims.
func (p *controlPlant) PushExpiry(sw string, expiry uint32) {
	n, ok := p.nodes[sw]
	if !ok {
		return
	}
	for _, prog := range n.SW.Programs() {
		prog.SetMaxExpiry(expiry)
	}
}

// PushTransitSplit implements ctrl.Plant: the switch's transit parking
// programs stop (or resume) claiming new slots; merges keep draining.
func (p *controlPlant) PushTransitSplit(sw string, enabled bool) {
	n, ok := p.nodes[sw]
	if !ok || p.transit == nil {
		return
	}
	for _, prog := range n.SW.Programs() {
		if p.transit(prog) {
			prog.SetSplitEnabled(enabled)
		}
	}
}

// PushGroup implements ctrl.Plant: rewrite the group to the named member
// subset.
func (p *controlPlant) PushGroup(group string, members []string) {
	g, ok := p.groups[group]
	if !ok {
		return
	}
	subset := make(map[string]rmt.PortID, len(members))
	for _, name := range members {
		port, ok := g.ports[name]
		if !ok {
			continue
		}
		subset[name] = port
	}
	if len(subset) == 0 {
		return // the controller never pushes an empty set; belt and braces
	}
	if err := g.node.SW.SetECMPRoute(g.dst, subset); err != nil {
		panic(fmt.Sprintf("sim: push group %s: %v", group, err))
	}
}

// attachController starts a controller ticking on the fabric's engine
// every cfg.PeriodNs until the horizon. Call before Fabric.Run; collect
// the decision timeline from the returned controller after it.
func attachController(f *Fabric, cfg ctrl.Config, plant *controlPlant, groups []ctrl.Group, until int64) *ctrl.Controller {
	c := ctrl.New(cfg, plant, groups)
	f.observeController(c)
	eng := f.Engine()
	period := c.Config().PeriodNs
	var tick func()
	tick = func() {
		c.Tick(eng.Now())
		if eng.Now()+period <= until {
			eng.Schedule(period, tick)
		}
	}
	eng.Schedule(period, tick)
	return c
}
