package sim

import (
	"reflect"
	"strings"
	"testing"

	"github.com/payloadpark/payloadpark/internal/core"
)

// leafSpineSmoke is a fast 4x2 configuration for tests.
func leafSpineSmoke(mode ParkMode, sendGbps float64) FabricConfig {
	return FabricConfig{
		Mode: mode, SendBps: sendGbps * 1e9, Seed: 1,
		WarmupNs: 2e6, MeasureNs: 8e6,
	}
}

// TestLeafSpineDeterministic: a fixed seed produces identical per-flow,
// per-link, and per-switch statistics, run to run — including the
// failure scenario's event timeline.
func TestLeafSpineDeterministic(t *testing.T) {
	for _, mode := range []ParkMode{ParkNone, ParkEdge, ParkEveryHop} {
		a := RunLeafSpine(leafSpineSmoke(mode, 9))
		b := RunLeafSpine(leafSpineSmoke(mode, 9))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %s: identical configs diverged:\n%+v\n%+v", mode, a, b)
		}
	}
	mk := func() FabricConfig {
		cfg := FabricConfig{
			Leaves: 6, Spines: 3,
			Mode: ParkEdge, SendBps: 4e9, Seed: 3,
			WarmupNs: 2e6, MeasureNs: 10e6, FailLink: true,
		}
		return cfg
	}
	a, b := RunLeafSpine(mk()), RunLeafSpine(mk())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("failure scenario diverged:\n%+v\n%+v", a, b)
	}
	// And the seed genuinely matters.
	cfg := leafSpineSmoke(ParkEdge, 9)
	cfg.Seed = 2
	c := RunLeafSpine(cfg)
	first := RunLeafSpine(leafSpineSmoke(ParkEdge, 9))
	if reflect.DeepEqual(first.Flows, c.Flows) {
		t.Error("different seeds produced identical flows (suspicious)")
	}
}

// TestLeafSpineEdgeParking: below saturation, edge parking delivers the
// same header-unit goodput as the baseline while moving fewer bytes over
// every fabric hop, and all parked payloads are reclaimed.
func TestLeafSpineEdgeParking(t *testing.T) {
	base := RunLeafSpine(leafSpineSmoke(ParkNone, 4))
	edge := RunLeafSpine(leafSpineSmoke(ParkEdge, 4))
	assertFabricInvariants(t, base)
	assertFabricInvariants(t, edge)
	if !base.Healthy || !edge.Healthy {
		t.Fatalf("unhealthy below saturation: base=%+v edge=%+v", base, base.Healthy)
	}
	if d := edge.GoodputGbps/base.GoodputGbps - 1; d > 0.01 || d < -0.01 {
		t.Errorf("goodput diverged below saturation: base=%.3f edge=%.3f", base.GoodputGbps, edge.GoodputGbps)
	}
	for i := range edge.Flows {
		if edge.Flows[i].ToNFGbps >= base.Flows[i].ToNFGbps {
			t.Errorf("flow %d: edge toNF %.3f >= base %.3f (no bytes saved)",
				i, edge.Flows[i].ToNFGbps, base.Flows[i].ToNFGbps)
		}
	}
	for _, sw := range edge.Switches {
		switch sw.Name[0] {
		case 'l':
			if sw.Splits == 0 || sw.Splits != sw.Merges {
				t.Errorf("%s: splits=%d merges=%d, want equal and nonzero", sw.Name, sw.Splits, sw.Merges)
			}
			if sw.Occupancy != 0 {
				t.Errorf("%s: %d parked payloads leaked", sw.Name, sw.Occupancy)
			}
		case 's':
			if sw.Splits != 0 {
				t.Errorf("%s: spine split in edge mode", sw.Name)
			}
		}
	}
	// Fabric links carry slim packets: compare spine-hop bits.
	var baseBits, edgeBits uint64
	for i := range base.Links {
		if strings.Contains(base.Links[i].Name, "->spine") {
			baseBits += base.Links[i].TxBits
			edgeBits += edge.Links[i].TxBits
		}
	}
	if edgeBits >= baseBits {
		t.Errorf("edge parking did not slim the fabric hops: %d >= %d", edgeBits, baseBits)
	}
}

// TestLeafSpineEveryHopStripes: striping parks at the spine and the
// egress leaf too, so the NF-facing link carries fewer bytes than under
// edge parking, and the round trip still reclaims every slot.
func TestLeafSpineEveryHopStripes(t *testing.T) {
	edge := RunLeafSpine(leafSpineSmoke(ParkEdge, 4))
	hop := RunLeafSpine(leafSpineSmoke(ParkEveryHop, 4))
	assertFabricInvariants(t, hop)
	if !hop.Healthy {
		t.Fatalf("striping unhealthy below saturation: %+v", hop)
	}
	if d := hop.GoodputGbps/edge.GoodputGbps - 1; d > 0.01 || d < -0.01 {
		t.Errorf("striping changed header goodput below saturation: edge=%.3f hop=%.3f",
			edge.GoodputGbps, hop.GoodputGbps)
	}
	for i := range hop.Flows {
		if hop.Flows[i].ToNFGbps >= edge.Flows[i].ToNFGbps {
			t.Errorf("flow %d: everyhop NF link %.3f >= edge %.3f", i,
				hop.Flows[i].ToNFGbps, edge.Flows[i].ToNFGbps)
		}
	}
	for _, sw := range hop.Switches {
		if sw.Splits == 0 || sw.Splits != sw.Merges {
			t.Errorf("%s: splits=%d merges=%d, want equal and nonzero (striping parks at every hop)",
				sw.Name, sw.Splits, sw.Merges)
		}
		if sw.Occupancy != 0 {
			t.Errorf("%s: %d parked payloads leaked", sw.Name, sw.Occupancy)
		}
	}
}

// TestLeafSpineFailureReroute: the dead link blackholes flow 0 until the
// reroute lands; afterwards delivery resumes with no premature
// evictions, because the merge port pinned the untouched return path.
func TestLeafSpineFailureReroute(t *testing.T) {
	cfg := FabricConfig{
		Leaves: 6, Spines: 3,
		Mode: ParkEdge, SendBps: 4e9, Seed: 1,
		WarmupNs: 2e6, MeasureNs: 12e6,
		FailLink: true, FailAtNs: 5e6, RerouteNs: 1e6,
	}
	r := RunLeafSpine(cfg)
	assertFabricInvariants(t, r)
	if r.PhaseDelivered[0] == 0 || r.PhaseDelivered[2] == 0 {
		t.Fatalf("no recovery: phases=%v", r.PhaseDelivered)
	}
	if r.PhaseDelivered[1] > r.PhaseDelivered[0]/10 {
		t.Errorf("outage did not blackhole flow 0: phases=%v", r.PhaseDelivered)
	}
	if n := totalPrematureStats(r); n != 0 {
		t.Errorf("reroute caused %d premature evictions; the alternate path must avoid merge ports", n)
	}
	if r.UnintendedDrops == 0 {
		t.Error("failure scenario recorded no drops")
	}
	// Only in-flight packets on the dead link orphan payloads; the orphans
	// sit at the ingress leaf awaiting expiry eviction.
	for _, sw := range r.Switches {
		if sw.Name != "leaf0" && sw.Occupancy != 0 {
			t.Errorf("%s: unexpected orphaned payloads: %d", sw.Name, sw.Occupancy)
		}
	}
}

func totalPrematureStats(r FabricResult) uint64 {
	var n uint64
	for _, s := range r.Switches {
		n += s.Premature
	}
	return n
}

// TestFabricDataplaneEquivalence: the pipelined per-switch drivers are
// observably equivalent to the sequential chain walk — same split/merge
// counters on every switch, packets fully restored every round.
func TestFabricDataplaneEquivalence(t *testing.T) {
	for _, switches := range []int{2, 3} {
		cfg := FabricDataplaneConfig{Switches: switches, Packets: 64, Rounds: 4, Batch: 32, Seed: 7}
		seq := RunFabricDataplane(cfg)
		cfg.Pipelined = true
		par := RunFabricDataplane(cfg)
		if seq.Packets == 0 || seq.Packets != par.Packets {
			t.Fatalf("chain %d: injections seq=%d par=%d", switches, seq.Packets, par.Packets)
		}
		if !reflect.DeepEqual(seq.PerSwitch, par.PerSwitch) {
			t.Errorf("chain %d: per-switch splits diverged: %v vs %v", switches, seq.PerSwitch, par.PerSwitch)
		}
		if seq.Splits != par.Splits || seq.Merges != par.Merges {
			t.Errorf("chain %d: counters diverged: seq=%+v par=%+v", switches, seq, par)
		}
		if seq.Splits != seq.Merges {
			t.Errorf("chain %d: splits=%d merges=%d (slots leaked)", switches, seq.Splits, seq.Merges)
		}
		want := uint64(switches * 64 * 4 * core.NumPipes)
		if seq.Splits != want {
			t.Errorf("chain %d: splits=%d, want %d (every switch parks every packet every round)",
				switches, seq.Splits, want)
		}
	}
}

// TestLeafSpineGeometryValidation: invalid parking geometries panic with
// a diagnostic rather than silently corrupting flows.
func TestLeafSpineGeometryValidation(t *testing.T) {
	expectPanic := func(name string, cfg FabricConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		RunLeafSpine(cfg)
	}
	// 4x3: flow 3's affinity collides with leaf 0's merge port.
	expectPanic("4x3", FabricConfig{Leaves: 4, Spines: 3, Mode: ParkEdge, SendBps: 1e9})
	// Failure reroute with two spines would land on a merge port.
	expectPanic("fail-2spines", FabricConfig{Mode: ParkEdge, SendBps: 1e9, FailLink: true})
}
