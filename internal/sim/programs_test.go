package sim

import (
	"reflect"
	"strings"
	"testing"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/prog"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// compressAttachment builds a testbed attachment for the built-in
// header-compression spec (ports defaulted by the topology).
func compressAttachment(slots int) ProgramAttachment {
	return ProgramAttachment{Spec: prog.HeaderCompressSpec(prog.CompressParams{Slots: slots})}
}

func testbedSmoke(sendGbps float64) TestbedConfig {
	return TestbedConfig{
		Name: "prog-smoke", LinkBps: 10e9, SendBps: sendGbps * 1e9,
		Dist: trafficgen.Fixed(512), Seed: 11,
		BuildChain: macSwapChain,
		WarmupNs:   2e6, MeasureNs: 8e6,
	}
}

// TestTestbedCompressionProgram: the declarative header-compression
// policy, attached through TestbedConfig.Programs with no Go program
// behind it, keeps goodput at parity below saturation while shrinking
// the NF-link traffic, and every context is reclaimed.
func TestTestbedCompressionProgram(t *testing.T) {
	base := RunTestbed(testbedSmoke(4))
	cfg := testbedSmoke(4)
	cfg.Programs = []ProgramAttachment{compressAttachment(4096)}
	comp := RunTestbed(cfg)

	if !base.Healthy || !comp.Healthy {
		t.Fatalf("unhealthy below saturation: base=%t comp=%t", base.Healthy, comp.Healthy)
	}
	if d := comp.GoodputGbps/base.GoodputGbps - 1; d > 0.01 || d < -0.01 {
		t.Errorf("goodput diverged: base=%.3f comp=%.3f", base.GoodputGbps, comp.GoodputGbps)
	}
	if comp.ToNFGbps >= base.ToNFGbps {
		t.Errorf("compression did not slim the NF link: %.3f >= %.3f", comp.ToNFGbps, base.ToNFGbps)
	}
	if len(comp.Programs) != 1 {
		t.Fatalf("programs = %d, want 1", len(comp.Programs))
	}
	pc := comp.Programs[0]
	if pc.Program != "header-compress" {
		t.Errorf("program name = %q", pc.Program)
	}
	if pc.Counters["compressions"] == 0 {
		t.Error("no compressions counted")
	}
	if pc.Counters["restores"] == 0 {
		t.Error("no restores counted")
	}
	if pc.Occupancy != 0 {
		t.Errorf("%d compression contexts leaked", pc.Occupancy)
	}
	if len(base.Programs) != 0 {
		t.Errorf("baseline reported %d programs", len(base.Programs))
	}
}

// TestTestbedParkPlusCompression: the built-in parking program and the
// declarative compression program share one pipe; the NF link carries
// fewer bytes than under either policy alone.
func TestTestbedParkPlusCompression(t *testing.T) {
	park := testbedSmoke(4)
	park.PayloadPark = true
	park.PP = core.Config{Slots: 16384, MaxExpiry: 1}
	parkRes := RunTestbed(park)

	both := testbedSmoke(4)
	both.PayloadPark = true
	both.PP = core.Config{Slots: 16384, MaxExpiry: 1}
	both.Programs = []ProgramAttachment{compressAttachment(4096)}
	bothRes := RunTestbed(both)

	if !parkRes.Healthy || !bothRes.Healthy {
		t.Fatalf("unhealthy below saturation: park=%t both=%t", parkRes.Healthy, bothRes.Healthy)
	}
	if bothRes.ToNFGbps >= parkRes.ToNFGbps {
		t.Errorf("adding compression did not slim the NF link further: %.3f >= %.3f",
			bothRes.ToNFGbps, parkRes.ToNFGbps)
	}
	if bothRes.Splits == 0 {
		t.Error("parking did not run alongside compression")
	}
	if len(bothRes.Programs) != 1 || bothRes.Programs[0].Counters["compressions"] == 0 {
		t.Fatalf("compression did not run alongside parking: %+v", bothRes.Programs)
	}
	if bothRes.Programs[0].Occupancy != 0 {
		t.Errorf("%d compression contexts leaked", bothRes.Programs[0].Occupancy)
	}
}

// TestLeafSpineCompression: fabric-wide compression at the ingress
// leaves keeps goodput at parity while slimming the fabric hops, every
// context is reclaimed, and results are byte-identical across partition
// counts.
func TestLeafSpineCompression(t *testing.T) {
	base := RunLeafSpine(leafSpineSmoke(ParkNone, 4))
	cfg := leafSpineSmoke(ParkNone, 4)
	cfg.Compress = true
	comp := RunLeafSpine(cfg)
	assertFabricInvariants(t, comp)

	if !base.Healthy || !comp.Healthy {
		t.Fatalf("unhealthy below saturation: base=%t comp=%t", base.Healthy, comp.Healthy)
	}
	if d := comp.GoodputGbps/base.GoodputGbps - 1; d > 0.01 || d < -0.01 {
		t.Errorf("goodput diverged: base=%.3f comp=%.3f", base.GoodputGbps, comp.GoodputGbps)
	}
	var baseBits, compBits uint64
	for i := range base.Links {
		if strings.Contains(base.Links[i].Name, "->spine") {
			baseBits += base.Links[i].TxBits
			compBits += comp.Links[i].TxBits
		}
	}
	if compBits >= baseBits {
		t.Errorf("compression did not slim the fabric hops: %d >= %d", compBits, baseBits)
	}
	if len(comp.Programs) != 4 {
		t.Fatalf("programs = %d, want one per ingress leaf", len(comp.Programs))
	}
	for _, pc := range comp.Programs {
		if pc.Counters["compressions"] == 0 || pc.Counters["restores"] == 0 {
			t.Errorf("%s/%s: compressions=%d restores=%d, want nonzero",
				pc.Switch, pc.Program, pc.Counters["compressions"], pc.Counters["restores"])
		}
		if pc.Occupancy != 0 {
			t.Errorf("%s: %d compression contexts leaked", pc.Switch, pc.Occupancy)
		}
	}

	par := cfg
	par.Partitions = 3
	if got := RunLeafSpine(par); !reflect.DeepEqual(comp, got) {
		t.Error("compression run diverged across partition counts")
	}
}

// TestLeafSpineParkEdgePlusCompression: both policies together on the
// fabric — payload parks and headers compress at the ingress leaf — slim
// the fabric hops beyond parking alone and reclaim all state.
func TestLeafSpineParkEdgePlusCompression(t *testing.T) {
	park := RunLeafSpine(leafSpineSmoke(ParkEdge, 4))
	cfg := leafSpineSmoke(ParkEdge, 4)
	cfg.Compress = true
	both := RunLeafSpine(cfg)
	assertFabricInvariants(t, park)
	assertFabricInvariants(t, both)

	if !both.Healthy {
		t.Fatalf("unhealthy below saturation: %+v", both.UnintendedDropRate)
	}
	var parkBits, bothBits uint64
	for i := range park.Links {
		if strings.Contains(park.Links[i].Name, "->spine") {
			parkBits += park.Links[i].TxBits
			bothBits += both.Links[i].TxBits
		}
	}
	if bothBits >= parkBits {
		t.Errorf("adding compression did not slim the fabric hops further: %d >= %d", bothBits, parkBits)
	}
	for _, sw := range both.Switches {
		if sw.Name[0] == 'l' && (sw.Splits == 0 || sw.Occupancy != 0) {
			t.Errorf("%s: splits=%d occupancy=%d, want parking active and reclaimed", sw.Name, sw.Splits, sw.Occupancy)
		}
	}
	for _, pc := range both.Programs {
		if pc.Counters["compressions"] == 0 {
			t.Errorf("%s: compression idle alongside parking", pc.Switch)
		}
	}
}

// TestLeafSpineCompressRejectsEveryHop pins the unsupported combination.
func TestLeafSpineCompressRejectsEveryHop(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "every-hop") {
			t.Errorf("recover = %v, want every-hop rejection", r)
		}
	}()
	cfg := leafSpineSmoke(ParkEveryHop, 4)
	cfg.Compress = true
	RunLeafSpine(cfg)
}

// TestAttachProgramsPinnedPorts: an attachment's own Params win over the
// topology defaults.
func TestAttachProgramsPinnedPorts(t *testing.T) {
	cfg := testbedSmoke(2)
	cfg.Programs = []ProgramAttachment{{
		Spec: prog.HeaderCompressSpec(prog.CompressParams{Slots: 64}),
		// Pin both ports to the generator port: nothing ever arrives on a
		// restore port, so contexts only ever accumulate.
		Params: map[string]int64{"merge_port": int64(portSplit)},
	}}
	res := RunTestbed(cfg)
	if res.Programs[0].Counters["restores"] != 0 {
		t.Errorf("restores = %d on a pinned-away merge port", res.Programs[0].Counters["restores"])
	}
	if res.Programs[0].Counters["compressions"] == 0 {
		t.Error("no compressions")
	}
}

// macSwapChain builds the default MAC-swap chain for program tests
// (compression restores L3/L4 headers from switch state, so the NF must
// not rewrite them).
func macSwapChain() *nf.Chain { return nf.NewChain(nf.MACSwap{}) }
