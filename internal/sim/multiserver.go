package sim

import (
	"fmt"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/stats"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// MultiServerConfig describes the §6.2.3 deployment: up to 8 NF servers
// (each running a MAC swapper) sharing one switch, two servers per pipe,
// with the reserved switch memory statically sliced between them.
type MultiServerConfig struct {
	// Servers is the NF server count (1..8).
	Servers int
	// LinkBps is each server's link rate; SendBps the per-server offered load.
	LinkBps float64
	SendBps float64
	// Dist draws packet sizes (the paper uses Fixed(384)).
	Dist trafficgen.SizeDist
	// SlotsPerServer sizes each server's sliced lookup table.
	SlotsPerServer int
	// MaxExpiry is the eviction threshold.
	MaxExpiry uint32
	// Server calibrates the NF server machines (8-core 2.4 GHz Xeons in
	// the paper).
	Server ServerModel
	// Cores, when non-zero, overrides Server.Cores on every server — the
	// knob the core-count sweeps turn without restating the calibration.
	Cores int
	// PayloadPark toggles the optimization (false = baseline).
	PayloadPark bool
	Seed        int64
	WarmupNs    int64
	MeasureNs   int64
	// Cancel, when non-nil, is polled periodically by the event engine;
	// once it returns true the run stops early and the result is partial.
	Cancel func() bool
	// Obs arms the observability layer (metrics and/or the flight
	// recorder); the zero value keeps it off.
	Obs ObsConfig
}

// MultiServerFlows is each generator's 5-tuple pool size: large enough
// that the RSS hash spreads load over 8 cores with only a few percent of
// share noise, small enough to keep flow state cheap. Exported so the
// harness's single-server peak probes offer the same RSS load
// distribution as the multi-server runs they calibrate.
const MultiServerFlows = 2048

// MultiServerResult reports per-server and aggregate outcomes. Note the
// metric fork documented on Result.GoodputGbps: in PerServer entries it
// holds the bits that actually crossed the to-NF link; derive the
// paper's header-unit goodput as ToNFMpps × 42 B × 8.
type MultiServerResult struct {
	PerServer []Result `json:"per_server"`
	// Switch resource utilization with all programs installed (Table 1's
	// SRAM rows): average and peak per-stage SRAM over used pipes.
	SRAMAvgPct  float64 `json:"sram_avg_pct"`
	SRAMPeakPct float64 `json:"sram_peak_pct"`
}

// RunMultiServer simulates all servers against one shared switch in a
// single discrete-event run. It is a preset over Fabric: one switch node
// whose per-ingress-port drop hooks charge each tenant's failures to its
// own counters and packet pool.
func RunMultiServer(cfg MultiServerConfig) MultiServerResult {
	if cfg.Servers < 1 || cfg.Servers > 8 {
		panic(fmt.Sprintf("sim: servers = %d outside [1,8]", cfg.Servers))
	}
	if cfg.WarmupNs == 0 {
		cfg.WarmupNs = 10e6
	}
	if cfg.MeasureNs == 0 {
		cfg.MeasureNs = 50e6
	}
	if cfg.Server.FreqHz == 0 {
		cfg.Server = DefaultServerModel()
	}
	if cfg.Cores > 0 {
		cfg.Server.Cores = cfg.Cores
	}
	f := NewFabric()
	f.Engine().Cancel = cfg.Cancel
	swn := f.AddSwitch("multiserver")
	sw := swn.SW
	windowStart := cfg.WarmupNs
	windowEnd := cfg.WarmupNs + cfg.MeasureNs

	results := make([]Result, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		wireServer(f, swn, cfg, i, windowStart, windowEnd, &results[i])
	}
	f.EnableObs(cfg.Obs)
	f.Run(windowEnd + cfg.WarmupNs)

	out := MultiServerResult{PerServer: results}
	pipes := (cfg.Servers + 1) / 2
	for p := 0; p < pipes; p++ {
		u := sw.Pipe(p).Resources()
		out.SRAMAvgPct += u.SRAMAvgPct
		if u.SRAMPeakPct > out.SRAMPeakPct {
			out.SRAMPeakPct = u.SRAMPeakPct
		}
	}
	out.SRAMAvgPct /= float64(pipes)
	return out
}

// wireServer attaches one generator/server pair to the shared switch
// node. Server i lives on pipe i/2; the second server of a pipe uses the
// upper port block. The server's two ingress ports register per-port
// drop hooks, so its failures recycle into its own generator pool.
func wireServer(f *Fabric, swn *SwitchNode, cfg MultiServerConfig, i int, windowStart, windowEnd int64, res *Result) {
	eng := f.Engine()
	pipe := i / 2
	base := rmt.PortID(core.PortsPerPipe*pipe + 8*(i%2))
	split, nfPort, sinkPort := base, base+1, base+2

	macGen := packet.MAC{0x02, 0x10, 0, 0, 0, byte(i)}
	macNF := packet.MAC{0x02, 0x20, 0, 0, 0, byte(i)}
	macSink := packet.MAC{0x02, 0x30, 0, 0, 0, byte(i)}
	swn.SW.AddL2Route(macNF, nfPort)
	swn.SW.AddL2Route(macSink, sinkPort)
	swn.SW.AddL2Route(macGen, sinkPort) // MAC swap returns toward the generator

	if cfg.PayloadPark {
		_, err := swn.SW.AttachPayloadPark(core.Config{
			Slots: cfg.SlotsPerServer, MaxExpiry: cfg.MaxExpiry,
			SplitPort: split, MergePort: nfPort,
		}, -1)
		if err != nil {
			panic(fmt.Sprintf("sim: multiserver attach %d: %v", i, err))
		}
	}

	srv := nf.NewServer(nf.ServerConfig{Chain: nf.NewChain(nf.MACSwap{})})
	gen := trafficgen.New(trafficgen.Config{
		Sizes: cfg.Dist, Flows: MultiServerFlows,
		SrcMAC: macGen, DstMAC: macNF,
		DstIP: packet.IPv4Addr{10, 1, byte(i), 9}, DstPort: 80,
		Seed: cfg.Seed + int64(i),
	})
	// Every terminal point (sink delivery, any drop, NF consumption) hands
	// the packet back to the generator, so multi-server runs reuse packets
	// like the single-server testbed does.
	recycle := gen.Recycle

	res.Name = fmt.Sprintf("server-%d", i+1)
	goodput := stats.NewRateMeter(windowStart)
	toNF := stats.NewRateMeter(windowStart)
	sentBits := stats.NewRateMeter(windowStart)
	var sent, drops uint64
	onDrop := func(p Parcel, _ string) {
		if p.InWindow {
			drops++
		}
		recycle(p.Pkt)
	}
	consumed := func(p Parcel) { recycle(p.Pkt) }

	name := func(hop string) string { return fmt.Sprintf("%s[%d]", hop, i+1) }
	returnLink := f.NewLink(name("nf->switch"), cfg.LinkBps, 500, 1<<20,
		swn.IngressWith(nfPort, onDrop, consumed), onDrop)
	srvSim := NewServerSim(eng, cfg.Server, srv, cfg.Seed+(int64(i)+1)<<40,
		returnLink.Send, onDrop, consumed)
	toNFLink := f.NewLink(name("switch->nf"), cfg.LinkBps, 500, 1<<20,
		func(p Parcel) {
			if now := eng.Now(); p.InWindow && now <= windowEnd {
				// Goodput records what actually crossed the link: the full
				// packet for a baseline run, the header remainder for a
				// PayloadPark run. The paper's header-unit goodput is
				// derived from the delivered packet rate (ToNFMpps).
				goodput.Record(now, float64(p.Pkt.Len()*8))
				toNF.Record(now, float64(WireBytes(p.Pkt)*8))
			}
			srvSim.Receive(p)
		}, onDrop)
	sink := f.AddSink(name("sink"), windowEnd, recycle)
	sinkLink := f.NewLink(name("switch->sink"), 2*cfg.LinkBps, 500, 2<<20,
		sink.Receive, onDrop)
	genLink := f.NewLink(name("gen->switch"), 2*cfg.LinkBps, 500, 4<<20,
		swn.IngressWith(split, onDrop, consumed), onDrop)

	swn.SetOut(nfPort, toNFLink)
	swn.SetOut(sinkPort, sinkLink)

	src := f.AddSource(name("gen"), gen, genLink, cfg.SendBps)
	src.WindowStart, src.WindowEnd = windowStart, windowEnd
	src.StopAt = windowEnd + cfg.WarmupNs/2
	src.OnSend = func(p Parcel) {
		sent++
		sentBits.Record(eng.Now(), float64(p.Pkt.Len()*8))
	}
	src.Start(int64(i) * 97) // desynchronize servers slightly

	// Finalize this server's result when the run ends.
	eng.ScheduleAt(windowEnd+cfg.WarmupNs-1, func() {
		goodput.CloseAt(windowEnd)
		toNF.CloseAt(windowEnd)
		sentBits.CloseAt(windowEnd)
		res.PerCore = srvSim.CoreStats()
		res.SendGbps = sentBits.Gbps()
		res.Delivered = sink.Delivered
		res.GoodputGbps = goodput.Gbps()
		res.ToNFGbps = toNF.Gbps()
		res.ToNFMpps = toNF.Mpps()
		res.AvgLatencyUs = sink.Latency.Mean()
		res.MaxLatencyUs = sink.Latency.Max()
		res.JitterUs = sink.Latency.Max() - sink.Latency.Mean()
		if sent > 0 {
			res.UnintendedDropRate = float64(drops) / float64(sent)
		}
		res.Healthy = res.UnintendedDropRate < HealthyDropRate
	})
}
