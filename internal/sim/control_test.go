package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/ctrl"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

func ecmpSmoke(mode ParkMode, sendGbps float64) FabricConfig {
	return FabricConfig{
		Leaves: 6, Spines: 3,
		Mode: mode, SendBps: sendGbps * 1e9, Seed: 1,
		WarmupNs: 2e6, MeasureNs: 10e6,
		ECMP: true,
	}
}

func linkTx(r FabricResult, name string) uint64 {
	for _, l := range r.Links {
		if l.Name == name {
			return l.TxPackets
		}
	}
	return 0
}

// TestLeafSpineECMPSpreadsFlows: with hash-group routing, an ingress
// leaf's forward traffic uses every parking-safe uplink, not just the
// flow's static affinity spine — and end-to-end behaviour stays healthy.
func TestLeafSpineECMPSpreadsFlows(t *testing.T) {
	static := ecmpSmoke(ParkEdge, 4)
	static.ECMP = false
	s := RunLeafSpine(static)
	e := RunLeafSpine(ecmpSmoke(ParkEdge, 4))

	if !e.Healthy {
		t.Fatalf("ECMP run unhealthy: drop=%.5f", e.UnintendedDropRate)
	}
	if d := e.GoodputGbps/s.GoodputGbps - 1; d > 0.02 || d < -0.02 {
		t.Errorf("ECMP goodput diverged from static below saturation: %.3f vs %.3f",
			e.GoodputGbps, s.GoodputGbps)
	}
	// Flow 0 (leaf0 -> nf1): parking-safe members are spine0 and spine2
	// (spine1 is leaf1's merge spine). Static forward traffic rides
	// spine0 only; ECMP spreads it over both. spine2->leaf1 carries no
	// return traffic (flow 1's headers return via its own merge spine),
	// so it isolates the forward path.
	if tx := linkTx(s, "spine2->leaf1"); tx != 0 {
		t.Errorf("static run sent %d forward packets over the non-affinity spine", tx)
	}
	for _, ln := range []string{"spine0->leaf1", "spine2->leaf1"} {
		if linkTx(e, ln) == 0 {
			t.Errorf("ECMP run left %s idle; flows not spread", ln)
		}
	}
	// Baseline (no parking) may additionally use the merge spine.
	b := RunLeafSpine(ecmpSmoke(ParkNone, 4))
	if linkTx(b, "spine1->leaf1") == 0 {
		t.Error("baseline ECMP should use all three spines toward leaf1")
	}
}

// TestLeafSpineECMPDeterministic pins the sweep-facing guarantee: same
// seed, same config => byte-identical FabricResult, including the
// flow->path assignment the link counters encode.
func TestLeafSpineECMPDeterministic(t *testing.T) {
	mk := func() FabricConfig {
		cfg := ecmpSmoke(ParkEdge, 5)
		cfg.Control = &ctrl.Config{Adaptive: true}
		return cfg
	}
	a, b := RunLeafSpine(mk()), RunLeafSpine(mk())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical ECMP configs diverged:\n%+v\n%+v", a, b)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Error("ECMP results not byte-identical across runs")
	}
}

// TestLeafSpineECMPControllerReroute is the tentpole's acceptance
// scenario: on the 6x3 link failure, the ECMP+adaptive controller
// detects the dead spine at its next telemetry tick and rewrites the
// hash group — recovering far faster than the static 2 ms reroute, with
// zero parking-safety violations (no premature evictions anywhere,
// orphans only at the ingress leaf whose in-flight packets died).
func TestLeafSpineECMPControllerReroute(t *testing.T) {
	mk := func(ecmp bool, cc *ctrl.Config) FabricConfig {
		return FabricConfig{
			Leaves: 6, Spines: 3,
			Mode: ParkEdge, SendBps: 4.5e9, Seed: 1,
			WarmupNs: 2e6, MeasureNs: 16e6,
			FailLink: true, FailAtNs: 6e6, RerouteNs: 2e6,
			ECMP: ecmp, Control: cc,
		}
	}
	static := RunLeafSpine(mk(false, nil))
	ctl := RunLeafSpine(mk(true, &ctrl.Config{Adaptive: true}))

	if ctl.Control == nil || ctl.Control.Ticks == 0 {
		t.Fatal("controller did not run")
	}
	// The reroute decision lands within one tick period of the failure.
	var reroute *ctrl.Decision
	for i := range ctl.Control.Decisions {
		if ctl.Control.Decisions[i].Kind == "reroute" {
			reroute = &ctl.Control.Decisions[i]
			break
		}
	}
	if reroute == nil {
		t.Fatalf("no reroute decision: %+v", ctl.Control.Decisions)
	}
	// Detection latency is at most one tick period (a tick scheduled at
	// the failure instant runs after the failure event — same timestamp,
	// later sequence number).
	period := ctl.Control.PeriodNs
	if reroute.AtNs < 6e6 || reroute.AtNs > 6e6+period {
		t.Errorf("reroute at %d ns, want within one %d ns tick of the 6e6 failure", reroute.AtNs, period)
	}

	// Parking safety: zero premature evictions in both runs, orphans only
	// at the ingress leaf.
	for name, r := range map[string]FabricResult{"static": static, "ecmp+ctrl": ctl} {
		if n := totalPrematureStats(r); n != 0 {
			t.Errorf("%s: %d premature evictions (parking-safety violation)", name, n)
		}
		for _, sw := range r.Switches {
			if sw.Name != "leaf0" && sw.Occupancy != 0 {
				t.Errorf("%s: %s stranded %d payloads", name, sw.Name, sw.Occupancy)
			}
		}
	}

	// Sub-tick detection beats the 2 ms static reroute on delivered
	// goodput at the same offered load.
	if ctl.GoodputGbps <= static.GoodputGbps {
		t.Errorf("ECMP+adaptive goodput %.4f <= static %.4f", ctl.GoodputGbps, static.GoodputGbps)
	}
	// And the outage phase (static reroute window) barely dents flow 0.
	if ctl.PhaseDelivered[1] <= static.PhaseDelivered[1] {
		t.Errorf("outage-phase deliveries: ecmp+ctrl %d <= static %d",
			ctl.PhaseDelivered[1], static.PhaseDelivered[1])
	}
}

// TestLeafSpineECMPFallbackReroute: ECMP without a controller mirrors
// the static detection delay with a one-shot group rewrite.
func TestLeafSpineECMPFallbackReroute(t *testing.T) {
	cfg := FabricConfig{
		Leaves: 6, Spines: 3,
		Mode: ParkEdge, SendBps: 4e9, Seed: 1,
		WarmupNs: 2e6, MeasureNs: 12e6,
		FailLink: true, FailAtNs: 5e6, RerouteNs: 1e6,
		ECMP: true,
	}
	r := RunLeafSpine(cfg)
	if r.Control != nil {
		t.Error("no controller configured, but a control report appeared")
	}
	if r.PhaseDelivered[0] == 0 || r.PhaseDelivered[2] == 0 {
		t.Fatalf("no recovery: phases=%v", r.PhaseDelivered)
	}
	if n := totalPrematureStats(r); n != 0 {
		t.Errorf("fallback reroute caused %d premature evictions", n)
	}
}

func TestLeafSpineECMPRejectsEveryHop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ECMP + ParkEveryHop accepted")
		}
	}()
	cfg := ecmpSmoke(ParkEveryHop, 2)
	RunLeafSpine(cfg)
}

// TestTestbedAdaptiveControlTimeline wires the single-switch adaptive
// evictor through the controller: a tiny parking table under load wraps
// before headers return, premature evictions spike, and the controller's
// backoff decisions land in Result.Control.
func TestTestbedAdaptiveControlTimeline(t *testing.T) {
	// Periodic 2 ms receive stalls against a table that wraps in ~0.6 ms:
	// payloads are evicted before their stalled headers return (the
	// Fig. 14 effect), until the controller backs the Expiry off.
	server := DefaultServerModel()
	server.StallPeriodNs = 4e6
	server.StallNs = 2e6
	cfg := TestbedConfig{
		Name:        "adaptive",
		LinkBps:     10e9,
		SendBps:     6e9,
		Dist:        trafficgen.Datacenter{},
		Seed:        1,
		BuildChain:  chainFWNAT,
		Server:      server,
		PayloadPark: true,
		PP:          core.Config{Slots: 512, MaxExpiry: 1},
		WarmupNs:    2e6,
		MeasureNs:   10e6,
		Control:     &ctrl.Config{Conservative: 12},
	}
	res := RunTestbed(cfg)
	if res.Control == nil {
		t.Fatal("no control report")
	}
	if res.Control.Ticks < 10 {
		t.Fatalf("controller barely ticked: %d", res.Control.Ticks)
	}
	if res.Premature == 0 {
		t.Fatal("test setup failed to provoke premature evictions")
	}
	if res.Control.ExpiryChanges == 0 || len(res.Control.Decisions) == 0 {
		t.Fatalf("controller never reacted: %+v", res.Control)
	}
	if res.Control.Decisions[0].Kind != "backoff" {
		t.Errorf("first decision = %q, want backoff", res.Control.Decisions[0].Kind)
	}

	// Without a program (baseline), Control is ignored.
	cfg.PayloadPark = false
	if base := RunTestbed(cfg); base.Control != nil {
		t.Error("baseline run produced a control report")
	}
}
