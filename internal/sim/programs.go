package sim

import (
	"fmt"
	"sort"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/prog"
	"github.com/payloadpark/payloadpark/internal/rmt"
)

// ProgramAttachment asks a topology preset to load one declarative table
// program (internal/prog) onto its switch alongside — or instead of — the
// built-in PayloadPark program. Params override the spec's declared
// parameters. The topology pins split_port and merge_port to its canonical
// ports unless the caller pins them in Params, so a serialized spec written
// against one port layout runs anywhere.
type ProgramAttachment struct {
	Spec   *prog.Spec       `json:"spec"`
	Params map[string]int64 `json:"params,omitempty"`
}

// ProgramCounters is one attached program's report: the spec name, every
// named counter's in-window delta, and the end-of-run occupancy of its
// EXP/CLK state tables (parking slots plus compression contexts).
type ProgramCounters struct {
	// Switch names the hosting switch on multi-switch topologies ("" on
	// the testbed, which has one switch).
	Switch  string `json:"switch,omitempty"`
	Program string `json:"program"`
	// Counters holds the in-window delta of every counter the spec
	// declares, keyed by the spec's counter names.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Occupancy is the end-of-run occupied-cell count across the
	// program's meta state tables (orphan detection).
	Occupancy int `json:"occupancy"`
}

// attachPrograms loads each attachment onto sw, defaulting split_port and
// merge_port to the topology's canonical ports. Topology presets panic on
// attach failure, like they do for the built-in program: a bad spec is a
// configuration error, not a simulation outcome.
func attachPrograms(sw *core.Switch, atts []ProgramAttachment, split, merge rmt.PortID) []*prog.Instance {
	insts := make([]*prog.Instance, 0, len(atts))
	for _, att := range atts {
		params := make(map[string]int64, len(att.Params)+2)
		for k, v := range att.Params { //pp:nondeterministic-ok order-insensitive copy into a map
			params[k] = v
		}
		if att.Spec != nil {
			for _, port := range []struct {
				name string
				def  int64
			}{
				{"split_port", int64(split)},
				{"merge_port", int64(merge)},
			} {
				if _, pinned := att.Params[port.name]; pinned {
					continue
				}
				if _, declared := att.Spec.ResolveParam(port.name, nil); declared {
					params[port.name] = port.def
				}
			}
		}
		inst, err := sw.AttachSpec(att.Spec, params, nil)
		if err != nil {
			panic(fmt.Sprintf("sim: attach program: %v", err))
		}
		insts = append(insts, inst)
	}
	return insts
}

// counterSnapshot captures one instance's cumulative counter values.
func counterSnapshot(inst *prog.Instance) map[string]uint64 {
	return inst.Counters()
}

// programSnapshots captures every instance's cumulative counters (taken
// at window start for in-window deltas).
func programSnapshots(insts []*prog.Instance) []map[string]uint64 {
	out := make([]map[string]uint64, len(insts))
	for i, inst := range insts {
		out[i] = counterSnapshot(inst)
	}
	return out
}

// programOccupancy sums the occupied cells of the instance's meta state
// tables (parked payload slots and compression contexts).
func programOccupancy(inst *prog.Instance) int {
	return inst.Occupied(prog.RoleMeta) + inst.Occupied(prog.RoleCompMeta)
}

// programReport diffs one instance against its window-start snapshot.
// A nil snapshot (window never started) reports the cumulative values.
func programReport(swName string, inst *prog.Instance, snap map[string]uint64) ProgramCounters {
	pc := ProgramCounters{
		Switch:    swName,
		Program:   inst.Spec().Name,
		Counters:  make(map[string]uint64),
		Occupancy: programOccupancy(inst),
	}
	for _, name := range inst.CounterNames() {
		pc.Counters[name] = inst.CounterValue(name) - snap[name]
	}
	return pc
}

// programReports builds the report section for one switch's instances.
func programReports(swName string, insts []*prog.Instance, snaps []map[string]uint64) []ProgramCounters {
	out := make([]ProgramCounters, 0, len(insts))
	for i, inst := range insts {
		var snap map[string]uint64
		if i < len(snaps) {
			snap = snaps[i]
		}
		out = append(out, programReport(swName, inst, snap))
	}
	sortPrograms(out)
	return out
}

// sortPrograms orders a report section by (switch, program) so output is
// deterministic regardless of attach order.
func sortPrograms(pcs []ProgramCounters) {
	sort.SliceStable(pcs, func(i, j int) bool {
		if pcs[i].Switch != pcs[j].Switch {
			return pcs[i].Switch < pcs[j].Switch
		}
		return pcs[i].Program < pcs[j].Program
	})
}
