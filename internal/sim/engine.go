// Package sim is the discrete-event network simulator that reproduces the
// paper's testbed: links with serialization and propagation delay, finite
// NIC and switch queues, a PCIe bus model, and an NF-server timing model,
// all wrapped around the byte-accurate dataplane of internal/core and the
// behavioural NFs of internal/nf.
//
// Time is int64 nanoseconds. Each engine is single-threaded and
// deterministic: identical configurations and seeds produce identical
// results. Multi-switch fabrics may shard across several engines — one
// per partition, conservatively synchronized on link propagation delay
// (see partition.go) — without giving up determinism.
package sim

// Engine is a discrete-event executor.
//
// The event queue is a timing wheel (wheel.go): O(1) amortized insert and
// extract for the near-horizon events that dominate — link serialization,
// switch traversal, server stations — with a hand-rolled 4-ary heap as
// the overflow level for far-future timers. Events are pointer-free
// (at, seq, slot) nodes; their closures live in a free-listed slot table
// instead, written exactly once per event, so neither bucket appends nor
// heap sifts trigger GC write barriers.
type Engine struct {
	now   int64
	seq   uint64
	queue timeWheel
	fns   []eventSlot
	free  []int32

	canceled bool

	// nexec counts events executed over the engine's lifetime (the
	// observability layer's events-total metric; one integer increment
	// per event whether or not anything reads it).
	nexec uint64

	// Cancel, when non-nil, is polled every cancelStride executed events
	// during Run; once it returns true the run stops between events and
	// Run returns early. The scenario layer binds it to a context so a
	// canceled sweep abandons a simulation mid-run instead of draining
	// the full event timeline. A nil Cancel (every preset default) costs
	// one predictable branch per event and changes no event ordering.
	Cancel func() bool
}

// cancelStride is how many executed events run between Cancel polls
// (events popped and dispatched, not loop iterations — an idle peek at
// the Run boundary does not count): rare enough to stay off the profile,
// frequent enough that a canceled multi-second run stops within
// microseconds of real time.
const cancelStride = 4096

// Canceled reports whether the last Run stopped early because Cancel
// returned true.
func (e *Engine) Canceled() bool { return e.canceled }

// eventSlot holds one scheduled event's payload: either a plain closure
// (fn) or a pre-bound parcel handler (pfn + p).
type eventSlot struct {
	fn  func()
	pfn func(Parcel)
	p   Parcel
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.queue.init(true)
	return e
}

// NewEngineHeap returns an engine whose entire queue is the reference
// 4-ary heap, with the timing wheel disabled. Both schedulers honour the
// same (at, seq) ordering contract; this one exists so differential
// tests and BenchmarkEngineSchedulePop can pit them against each other.
func NewEngineHeap() *Engine {
	e := &Engine{}
	e.queue.init(false)
	return e
}

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Schedule runs fn after delay nanoseconds (>= 0).
func (e *Engine) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t int64, fn func()) {
	e.queue.push(node{at: e.clamp(t), seq: e.nextSeq(), slot: e.alloc(eventSlot{fn: fn})}, e.now)
}

// ScheduleParcel runs fn(p) after delay nanoseconds. Unlike Schedule with
// a closure capturing p, the parcel rides in the event slot and fn is a
// pre-bound handler, so per-packet-hop scheduling allocates nothing —
// links and server stations schedule one to two events per packet hop.
func (e *Engine) ScheduleParcel(delay int64, fn func(Parcel), p Parcel) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleParcelAt(e.now+delay, fn, p)
}

// ScheduleParcelAt runs fn(p) at absolute time t (clamped to now).
func (e *Engine) ScheduleParcelAt(t int64, fn func(Parcel), p Parcel) {
	e.queue.push(node{at: e.clamp(t), seq: e.nextSeq(), slot: e.alloc(eventSlot{pfn: fn, p: p})}, e.now)
}

func (e *Engine) clamp(t int64) int64 {
	if t < e.now {
		return e.now
	}
	return t
}

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

func (e *Engine) alloc(ev eventSlot) int32 {
	if n := len(e.free); n > 0 {
		slot := e.free[n-1]
		e.free = e.free[:n-1]
		e.fns[slot] = ev
		return slot
	}
	e.fns = append(e.fns, ev)
	return int32(len(e.fns) - 1)
}

// Run executes events in timestamp order until the queue drains or the
// clock passes until.
func (e *Engine) Run(until int64) {
	e.canceled = false
	var executed uint
	for {
		ev, ok := e.queue.popLE(until)
		if !ok {
			break
		}
		slot := e.fns[ev.slot]
		e.fns[ev.slot] = eventSlot{}
		e.free = append(e.free, ev.slot)
		e.now = ev.at
		e.nexec++
		if slot.pfn != nil {
			slot.pfn(slot.p)
		} else {
			slot.fn()
		}
		if e.Cancel != nil {
			if executed++; executed%cancelStride == 0 && e.Cancel() {
				e.canceled = true
				return
			}
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events (for tests).
func (e *Engine) Pending() int { return e.queue.len() }

// Executed returns the number of events the engine has run so far.
// Only meaningful from the engine's own goroutine or after Run
// returns (metric snapshots read it post-run).
func (e *Engine) Executed() uint64 { return e.nexec }

// nextAt returns the firing time of the earliest queued event (the
// partition runner's window placement).
func (e *Engine) nextAt() (int64, bool) {
	return e.queue.peekAt()
}

// node is one queued event: its firing time, a FIFO tie-break for
// simultaneous events, and the slot of its closure in Engine.fns. Nodes
// are pointer-free so neither wheel appends nor heap sifts trigger GC
// write barriers.
type node struct {
	at   int64
	seq  uint64
	slot int32
}

// nodeHeap is a 4-ary min-heap ordered by (at, seq) — the timing wheel's
// overflow level, and the whole queue of a NewEngineHeap engine. The
// wider fan-out halves the tree depth of the binary variant — fewer sift
// levels and swaps per operation, and children share cache lines.
type nodeHeap []node

const heapArity = 4

func (h nodeHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *nodeHeap) push(n node) {
	q := append(*h, n)
	// Sift up.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *nodeHeap) pop() {
	q := *h
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	// Sift down.
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		child := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, child) {
				child = c
			}
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	*h = q
}
