// Package sim is the discrete-event network simulator that reproduces the
// paper's testbed: links with serialization and propagation delay, finite
// NIC and switch queues, a PCIe bus model, and an NF-server timing model,
// all wrapped around the byte-accurate dataplane of internal/core and the
// behavioural NFs of internal/nf.
//
// Time is int64 nanoseconds. The simulator is single-threaded and
// deterministic: identical configurations and seeds produce identical
// results.
package sim

import (
	"container/heap"
)

// Engine is a discrete-event executor.
type Engine struct {
	now   int64
	seq   uint64
	queue eventHeap
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Schedule runs fn after delay nanoseconds (>= 0).
func (e *Engine) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events in timestamp order until the queue drains or the
// clock passes until.
func (e *Engine) Run(until int64) {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events (for tests).
func (e *Engine) Pending() int { return e.queue.Len() }

type event struct {
	at  int64
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
