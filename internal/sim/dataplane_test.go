package sim

import (
	"testing"
)

// TestRunDataplaneParallelEquivalence drives identical traffic through
// identical switches sequentially and with one worker per pipe; the
// program counters (splits/merges) and injection totals must match
// exactly — pipes share no state, and per-pipe ordering is preserved.
// Run with -race this also guards the multi-pipe driver's memory safety.
func TestRunDataplaneParallelEquivalence(t *testing.T) {
	cfg := DataplaneConfig{Packets: 64, Rounds: 4, Batch: 64, Seed: 7}
	seq := RunDataplane(cfg)
	cfg.Parallel = true
	par := RunDataplane(cfg)

	if seq.Packets != par.Packets {
		t.Errorf("packets: sequential %d, parallel %d", seq.Packets, par.Packets)
	}
	if seq.Splits != par.Splits || seq.Merges != par.Merges {
		t.Errorf("counters differ: sequential splits=%d merges=%d, parallel splits=%d merges=%d",
			seq.Splits, seq.Merges, par.Splits, par.Merges)
	}
	if seq.Splits == 0 || seq.Merges == 0 {
		t.Error("dataplane drive produced no split/merge traffic")
	}
	if par.Workers != 4 {
		t.Errorf("parallel workers = %d, want 4", par.Workers)
	}
}

// TestBuildDataplaneTrafficDeterministic guards the equivalence test's
// premise: two builds with the same seed produce byte-identical traffic.
func TestBuildDataplaneTrafficDeterministic(t *testing.T) {
	_, a := BuildDataplane(DataplaneConfig{Packets: 8, Seed: 3})
	_, b := BuildDataplane(DataplaneConfig{Packets: 8, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("pipe counts differ: %d vs %d", len(a), len(b))
	}
	for pipe := range a {
		for i := range a[pipe] {
			fa := a[pipe][i].Pkt.Serialize()
			fb := b[pipe][i].Pkt.Serialize()
			if string(fa) != string(fb) {
				t.Fatalf("pipe %d packet %d differs between builds", pipe, i)
			}
		}
	}
}
