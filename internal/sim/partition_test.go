package sim

import (
	"reflect"
	"testing"

	"github.com/payloadpark/payloadpark/internal/ctrl"
)

// TestGreedyPartitionPlacement: the partitioner is deterministic,
// balanced under its ceil(n/k) cap, and keeps a complete-bipartite
// leaf-spine graph's parts non-trivial.
func TestGreedyPartitionPlacement(t *testing.T) {
	adj := func(L, S int) [][]int {
		a := make([][]int, L+S)
		for i := 0; i < L; i++ {
			for s := 0; s < S; s++ {
				a[i] = append(a[i], L+s)
				a[L+s] = append(a[L+s], i)
			}
		}
		return a
	}
	for _, tc := range []struct{ L, S, k int }{
		{4, 2, 2}, {6, 3, 4}, {16, 8, 8}, {4, 2, 1}, {2, 1, 16},
	} {
		a := adj(tc.L, tc.S)
		got := greedyPartition(a, tc.k)
		if again := greedyPartition(a, tc.k); !reflect.DeepEqual(got, again) {
			t.Errorf("%dx%d k=%d: partitioner not deterministic: %v vs %v", tc.L, tc.S, tc.k, got, again)
		}
		k := tc.k
		if k > tc.L+tc.S {
			k = tc.L + tc.S
		}
		most := (tc.L + tc.S + k - 1) / k
		load := make([]int, k)
		for v, p := range got {
			if p < 0 || p >= k {
				t.Fatalf("%dx%d k=%d: node %d assigned out-of-range part %d", tc.L, tc.S, tc.k, v, p)
			}
			load[p]++
		}
		for p, n := range load {
			if n > most {
				t.Errorf("%dx%d k=%d: part %d holds %d nodes (cap %d)", tc.L, tc.S, tc.k, p, n, most)
			}
		}
	}
}

// TestLeafSpinePartitionParity is the tentpole's determinism contract:
// the partitioned conservative-sync runner produces byte-identical
// FabricResults across partition counts — including the failure-reroute
// and ECMP goldens — with partitions=1 being the reference serial
// timeline. Runs under -race in CI, which also pins the runner's
// barrier discipline.
func TestLeafSpinePartitionParity(t *testing.T) {
	cases := []struct {
		name string
		cfg  FabricConfig
	}{
		{"4x2-edge", leafSpineSmoke(ParkEdge, 9)},
		{"4x2-everyhop", leafSpineSmoke(ParkEveryHop, 6)},
		{"6x3-fail", FabricConfig{
			Leaves: 6, Spines: 3,
			Mode: ParkEdge, SendBps: 4e9, Seed: 3,
			WarmupNs: 2e6, MeasureNs: 10e6, FailLink: true,
		}},
		{"6x3-ecmp-fail", FabricConfig{
			Leaves: 6, Spines: 3,
			Mode: ParkEdge, SendBps: 4e9, Seed: 5,
			WarmupNs: 2e6, MeasureNs: 8e6,
			FailLink: true, ECMP: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.cfg
			base.Partitions = 1
			want := RunLeafSpine(base)
			for _, p := range []int{2, 4, 8} {
				cfg := tc.cfg
				cfg.Partitions = p
				if got := RunLeafSpine(cfg); !reflect.DeepEqual(want, got) {
					t.Errorf("partitions=%d diverged from serial run:\nserial: %+v\nparallel: %+v", p, want, got)
				}
			}
		})
	}
}

// TestLeafSpinePartitionsWithController: a fabric-wide controller forces
// the serial timeline, so asking for partitions alongside it must be a
// no-op rather than a divergence.
func TestLeafSpinePartitionsWithController(t *testing.T) {
	cfg := leafSpineSmoke(ParkEdge, 6)
	cfg.ECMP = true
	cfg.Control = &ctrl.Config{Adaptive: true}
	want := RunLeafSpine(cfg)
	cfg.Partitions = 4
	if got := RunLeafSpine(cfg); !reflect.DeepEqual(want, got) {
		t.Errorf("controller run changed under partitions knob:\n%+v\n%+v", want, got)
	}
}
