package sim

import (
	"reflect"
	"testing"
)

// TestRunsAreDeterministic: identical configurations produce bit-identical
// results — the property that makes every experiment in this repository
// reproducible.
func TestRunsAreDeterministic(t *testing.T) {
	cfg := smokeConfig(true, 9)
	cfg.WarmupNs = 2e6
	cfg.MeasureNs = 8e6
	a := RunTestbed(cfg)
	b := RunTestbed(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

// TestSeedChangesResults: different seeds genuinely change the workload.
func TestSeedChangesResults(t *testing.T) {
	cfg := smokeConfig(true, 9)
	cfg.WarmupNs = 2e6
	cfg.MeasureNs = 8e6
	a := RunTestbed(cfg)
	cfg.Seed = 2
	b := RunTestbed(cfg)
	if a.Delivered == b.Delivered && a.AvgLatencyUs == b.AvgLatencyUs {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestJitterPreservesMeanService: with jitter on, throughput at moderate
// load stays near the no-jitter value (mean service time unchanged).
func TestJitterPreservesMeanService(t *testing.T) {
	mk := func(jitter float64) TestbedConfig {
		cfg := smokeConfig(true, 6)
		cfg.Server = DefaultServerModel()
		cfg.Server.ServiceJitterPct = jitter
		cfg.WarmupNs = 2e6
		cfg.MeasureNs = 10e6
		return cfg
	}
	a := RunTestbed(mk(0))
	b := RunTestbed(mk(0.4))
	if diff := b.GoodputGbps/a.GoodputGbps - 1; diff > 0.02 || diff < -0.02 {
		t.Errorf("jitter changed mean throughput by %.1f%%", 100*diff)
	}
	// But jitter raises latency variance (queueing).
	if b.MaxLatencyUs <= a.MaxLatencyUs {
		t.Logf("note: jitter did not raise max latency (a=%.1f b=%.1f)", a.MaxLatencyUs, b.MaxLatencyUs)
	}
}

// TestStallModelInjectsLatency: the Fig. 14 stall mechanism visibly
// lengthens the latency tail without changing low-load goodput.
func TestStallModelInjectsLatency(t *testing.T) {
	mk := func(stall bool) TestbedConfig {
		cfg := smokeConfig(true, 4)
		cfg.Server = DefaultServerModel() // set first: fillDefaults replaces a zero model
		if stall {
			cfg.Server.StallPeriodNs = 5e6
			cfg.Server.StallNs = 1e6
		}
		cfg.Server.NICRing = 65536
		cfg.Server.StageQueue = 65536
		cfg.WarmupNs = 2e6
		cfg.MeasureNs = 15e6
		return cfg
	}
	calm := RunTestbed(mk(false))
	stalled := RunTestbed(mk(true))
	if stalled.MaxLatencyUs < 5*calm.MaxLatencyUs {
		t.Errorf("stalls not visible in latency tail: calm=%.1fus stalled=%.1fus",
			calm.MaxLatencyUs, stalled.MaxLatencyUs)
	}
	if diff := stalled.GoodputGbps/calm.GoodputGbps - 1; diff > 0.02 || diff < -0.02 {
		t.Errorf("stalls changed low-load goodput by %.1f%%", 100*diff)
	}
}
