package sim

import (
	"testing"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/prog"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// assertFabricInvariants checks the fabric-wide parked-slot accounting
// identity on every switch after a run: payloads still parked equals
// payloads parked minus merged minus evicted (premature evictions drop
// headers, not slots, so they do not appear; the fabric has no explicit
// drops). Orphans from failure scenarios stay on the left side, so the
// identity holds there too.
func assertFabricInvariants(t *testing.T, res FabricResult) {
	t.Helper()
	for _, sw := range res.Switches {
		outstanding := int64(sw.Splits) - int64(sw.Merges) - int64(sw.Evictions)
		if int64(sw.Occupancy) != outstanding {
			t.Errorf("%s: parked-slot accounting broken: occupancy=%d, splits-merges-evictions=%d",
				sw.Name, sw.Occupancy, outstanding)
		}
	}
}

// TestFabricSlotAccountingGoldenRuns re-runs the fabric golden
// configurations — edge, every-hop, the failure scenario, ECMP — and
// checks the slot-accounting identity on every switch of each.
func TestFabricSlotAccountingGoldenRuns(t *testing.T) {
	cfgs := map[string]FabricConfig{
		"edge":     leafSpineSmoke(ParkEdge, 6),
		"everyhop": leafSpineSmoke(ParkEveryHop, 6),
		"failure": {
			Leaves: 6, Spines: 3, Mode: ParkEdge, SendBps: 4e9, Seed: 3,
			WarmupNs: 2e6, MeasureNs: 10e6, FailLink: true,
		},
	}
	ecmp := leafSpineSmoke(ParkEdge, 6)
	ecmp.ECMP = true
	cfgs["ecmp"] = ecmp
	compress := leafSpineSmoke(ParkEdge, 6)
	compress.Compress = true
	cfgs["edge+compress"] = compress

	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			res := RunLeafSpine(cfg)
			assertFabricInvariants(t, res)
			var splits uint64
			for _, sw := range res.Switches {
				splits += sw.Splits
			}
			if splits == 0 {
				t.Fatal("nothing parked; the invariant check checked nothing")
			}
		})
	}
}

// TestFabricByteConservation drives fixed-size frames through a manually
// wired fabric switch running parking plus declarative compression and
// verifies byte conservation end to end: every packet delivered to the
// sink has shed its PayloadPark and compression headers and carries
// exactly the bytes the generator sent, even though the NF-facing hop
// saw only the slimmed remainder.
func TestFabricByteConservation(t *testing.T) {
	const frameLen = 512
	f := NewFabric()
	swn := f.AddSwitch("conserve")
	sw := swn.SW
	sw.AddL2Route(MACNF, portNF)
	sw.AddL2Route(MACSink, portSink)
	sw.AddL2Route(MACGen, portSink)

	park, err := sw.AttachPayloadPark(core.Config{
		Slots: 512, MaxExpiry: 1, SplitPort: portSplit, MergePort: portNF,
	}, -1)
	if err != nil {
		t.Fatalf("attach parking: %v", err)
	}
	comp, err := sw.AttachSpec(prog.HeaderCompressSpec(prog.CompressParams{
		Slots: 512, CompressPort: int(portSplit), RestorePort: int(portNF),
	}), nil, nil)
	if err != nil {
		t.Fatalf("attach compression: %v", err)
	}

	gen := trafficgen.New(trafficgen.Config{
		Sizes: trafficgen.Fixed(frameLen), Flows: 64,
		SrcMAC: MACGen, DstMAC: MACNF,
		DstIP: [4]byte{10, 9, 0, 1}, DstPort: 80, Seed: 7,
	})
	fail := func(p Parcel, why string) { t.Errorf("unintended drop: %s", why) }
	swn.OnDrop = fail
	swn.OnConsumed = func(p Parcel) { t.Error("switch consumed a packet") }

	returnLink := f.NewLink("nf->sw", 10e9, 500, 1<<20, swn.Ingress(portNF), fail)
	var slimmed, delivered int
	toNFLink := f.NewLink("sw->nf", 10e9, 500, 1<<20, func(p Parcel) {
		// The NF-facing hop must carry strictly less than the full frame
		// (parked payload and saved header bytes are both off the wire).
		if p.Pkt.Len() >= frameLen {
			t.Errorf("NF-link frame = %d B, want < %d", p.Pkt.Len(), frameLen)
		}
		slimmed++
		// Parcel-level MAC-swap NF.
		p.Pkt.Eth.Src, p.Pkt.Eth.Dst = p.Pkt.Eth.Dst, p.Pkt.Eth.Src
		returnLink.Send(p)
	}, fail)
	sinkLink := f.NewLink("sw->sink", 10e9, 500, 1<<20, func(p Parcel) {
		delivered++
		if p.Pkt.PP != nil {
			t.Error("delivered packet still carries a PayloadPark header")
		}
		if p.Pkt.CR != nil {
			t.Error("delivered packet still carries a compression header")
		}
		if got := p.Pkt.Len(); got != frameLen {
			t.Errorf("delivered frame = %d B, want %d (bytes not conserved)", got, frameLen)
		}
	}, fail)
	swn.SetOut(portNF, toNFLink)
	swn.SetOut(portSink, sinkLink)

	genLink := f.NewLink("gen->sw", 10e9, 500, 1<<20, swn.Ingress(portSplit), fail)
	src := f.AddSource("gen", gen, genLink, 2e9)
	src.WindowStart, src.WindowEnd = 0, 4e6
	src.StopAt = 4e6
	src.Start(0)
	f.Run(6e6) // drain so every split finds its merge

	if delivered == 0 || slimmed == 0 {
		t.Fatalf("delivered=%d slimmed=%d, want traffic", delivered, slimmed)
	}
	// Slot accounting after drain: everything parked was reclaimed.
	c := &park.C
	outstanding := int64(c.Splits.Value()) - int64(c.Merges.Value()) -
		int64(c.Evictions.Value()) - int64(c.ExplicitDrops.Value())
	if got := int64(park.Occupancy()); got != outstanding {
		t.Errorf("parking occupancy = %d, counters say %d outstanding", got, outstanding)
	}
	if got := comp.Occupied(prog.RoleCompMeta); got != 0 {
		t.Errorf("%d compression contexts leaked after drain", got)
	}
	if c.Splits.Value() == 0 || comp.CounterValue("compressions") == 0 {
		t.Fatal("policies idle; conservation checked nothing")
	}
}

// TestSlotAccountingUnderPressure overdrives a small parking table so
// occupied skips and evictions all fire, then checks the full identity
// including the explicit-drop term: Occupancy == Splits − Merges −
// ExplicitDrops − Evictions (core.Counters.Outstanding).
func TestSlotAccountingUnderPressure(t *testing.T) {
	f := NewFabric()
	swn := f.AddSwitch("acct")
	sw := swn.SW
	sw.AddL2Route(MACNF, portNF)
	sw.AddL2Route(MACSink, portSink)
	sw.AddL2Route(MACGen, portSink)
	park, err := sw.AttachPayloadPark(core.Config{
		Slots: 64, MaxExpiry: 1, SplitPort: portSplit, MergePort: portNF,
	}, -1)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	gen := trafficgen.New(trafficgen.Config{
		Sizes: trafficgen.Fixed(512), Flows: 256,
		SrcMAC: MACGen, DstMAC: MACNF,
		DstIP: [4]byte{10, 9, 0, 2}, DstPort: 80, Seed: 9,
	})
	drop := func(p Parcel, _ string) {}
	returnLink := f.NewLink("nf->sw", 10e9, 500, 1<<20, swn.Ingress(portNF), drop)
	toNF := f.NewLink("sw->nf", 10e9, 500, 1<<20, func(p Parcel) {
		p.Pkt.Eth.Src, p.Pkt.Eth.Dst = p.Pkt.Eth.Dst, p.Pkt.Eth.Src
		returnLink.Send(p)
	}, drop)
	sink := f.NewLink("sw->sink", 10e9, 500, 1<<20, func(Parcel) {}, drop)
	swn.SetOut(portNF, toNF)
	swn.SetOut(portSink, sink)
	genLink := f.NewLink("gen->sw", 10e9, 500, 1<<20, swn.Ingress(portSplit), drop)
	// Overdrive a 64-slot table so occupied skips and evictions happen.
	src := f.AddSource("gen", gen, genLink, 8e9)
	src.WindowStart, src.WindowEnd = 0, 4e6
	src.StopAt = 4e6
	src.Start(0)
	f.Run(6e6)

	c := &park.C
	if c.Splits.Value() == 0 {
		t.Fatal("nothing parked")
	}
	if got, want := int64(park.Occupancy()), c.Outstanding(); got != int64(want) {
		t.Errorf("occupancy = %d, Outstanding() = %d", got, want)
	}
}
