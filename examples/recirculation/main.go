// Recirculation example (§6.2.5): a second pass through another pipe
// raises the parked bytes from 160 to 384 per packet, roughly doubling
// the goodput gain on large-packet traffic.
//
//	go run ./examples/recirculation
package main

import (
	"bytes"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	plain, err := payloadpark.New(payloadpark.DeploymentConfig{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	recirc, err := payloadpark.New(payloadpark.DeploymentConfig{Slots: 1024, Recirculate: true})
	if err != nil {
		log.Fatal(err)
	}

	flow := payloadpark.FiveTuple{
		SrcIP: payloadpark.IPv4Addr{10, 0, 0, 1}, DstIP: payloadpark.IPv4Addr{10, 1, 0, 9},
		SrcPort: 5000, DstPort: 80, Protocol: 17,
	}

	fmt.Printf("parked bytes: normal=%d recirculated=%d\n\n",
		payloadpark.ParkBytes, payloadpark.ParkBytesRecirculated)
	fmt.Println("size(B)  on-wire normal  on-wire recirc  intact")

	for _, size := range []int{300, 500, 882, 1200, 1492} {
		a := payloadpark.NewUDPPacket(flow, size, 1)
		b := a.Clone()
		orig := a.Clone()

		// Observe the split sizes by walking each deployment's switch
		// only via Process (which completes the round trip), then infer
		// the on-wire size from the parking rules.
		wireNormal := size - payloadpark.ParkBytes + 7
		if size-42 < payloadpark.ParkBytes {
			wireNormal = size + 7 // too small to park: header added, ENB=0
		}
		wireRecirc := size - payloadpark.ParkBytesRecirculated + 7
		if size-42 < payloadpark.ParkBytesRecirculated {
			wireRecirc = size + 7
		}

		outA := plain.Process(a)
		outB := recirc.Process(b)
		intact := outA != nil && outB != nil &&
			bytes.Equal(outA.Payload, orig.Payload) &&
			bytes.Equal(outB.Payload, orig.Payload)

		fmt.Printf("%6d   %8d        %8d        %t\n", size, wireNormal, wireRecirc, intact)
	}

	fmt.Println("\nwith recirculation the minimum payload threshold rises to 384B (§6.3.3),")
	fmt.Println("so mid-sized packets ride whole — but large packets shrink much further.")
}
