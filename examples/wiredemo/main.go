// Wire demo: the full PayloadPark dataplane over real UDP sockets, all
// three endpoints (generator, switch, NF server) in one process on
// localhost. The same binary-accurate switch program that runs in the
// simulator forwards real datagrams here.
//
//	go run ./examples/wiredemo
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/wire"
)

var (
	genMAC = packet.MAC{0x02, 0, 0, 0, 0, 0x01}
	nfMAC  = packet.MAC{0x02, 0, 0, 0, 0, 0x02}
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Traffic generator endpoint (also the sink).
	gen, err := wire.NewGenerator(ctx, wire.GenConfig{Listen: "127.0.0.1:0", SwitchAddr: "127.0.0.1:1"})
	if err != nil {
		log.Fatal(err)
	}
	// NF server: MAC swapper, PayloadPark-unaware.
	nfd, err := wire.NewNFDaemon(wire.NFConfig{
		Listen: "127.0.0.1:0", SwitchAddr: "127.0.0.1:1",
		Handle: func(p *packet.Packet) bool {
			p.Eth.Src, p.Eth.Dst = p.Eth.Dst, p.Eth.Src
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The switch, cabled to both.
	swd, err := wire.NewSwitchDaemon(wire.SwitchConfig{
		Listen:     "127.0.0.1:0",
		Ports:      map[rmt.PortID]string{0: gen.Addr(), 1: nfd.Addr()},
		L2:         map[packet.MAC]rmt.PortID{nfMAC: 1, genMAC: 0},
		PP:         &core.Config{Slots: 1024, MaxExpiry: 1, SplitPort: 0, MergePort: 1},
		RecircPipe: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Point the other endpoints at the switch's real address.
	if err := gen.Retarget(swd.Addr()); err != nil {
		log.Fatal(err)
	}
	if err := nfd.Retarget(swd.Addr()); err != nil {
		log.Fatal(err)
	}

	go swd.Run(ctx)
	go nfd.Run(ctx)

	fmt.Printf("switch on %s, nf on %s, generator on %s\n\n", swd.Addr(), nfd.Addr(), gen.Addr())

	flow := packet.FiveTuple{
		SrcIP: packet.IPv4Addr{10, 0, 0, 1}, DstIP: packet.IPv4Addr{10, 1, 0, 9},
		SrcPort: 5000, DstPort: 80, Protocol: packet.IPProtoUDP,
	}
	b := packet.NewBuilder(genMAC, nfMAC)
	const n = 100
	sent := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		pkt := b.UDP(flow, 400+i*10, uint16(i))
		sent = append(sent, append([]byte(nil), pkt.Payload...))
		if err := gen.Send(pkt.Serialize()); err != nil {
			log.Fatal(err)
		}
	}
	got := gen.WaitReceived(n, 5*time.Second)
	intact := 0
	for _, frame := range gen.Drain() {
		pkt, err := packet.Parse(frame, false)
		if err != nil {
			continue
		}
		for j, payload := range sent {
			if payload != nil && bytes.Equal(pkt.Payload, payload) {
				sent[j] = nil
				intact++
				break
			}
		}
	}
	cancel()
	time.Sleep(20 * time.Millisecond)

	fmt.Printf("sent=%d received=%d payloads-intact=%d\n", n, got, intact)
	fmt.Printf("switch counters: %s\n", swd.Counters().String())
	fmt.Println("\nevery payload was parked in switch register cells while its header")
	fmt.Println("crossed real UDP sockets to the NF server and back.")
}
