// NF chain example: the paper's headline experiment (Fig. 7) in miniature.
// A FW -> NAT -> LB chain on a 10 GbE link receives enterprise-datacenter
// traffic; we compare baseline and PayloadPark deployments as the offered
// load crosses the link's capacity.
//
//	go run ./examples/nfchain
package main

import (
	"fmt"

	payloadpark "github.com/payloadpark/payloadpark"
)

func buildChain() *payloadpark.Chain {
	fw := payloadpark.NewFirewall(nil) // empty blacklist: nothing drops
	nat := payloadpark.NewNAT(payloadpark.IPv4Addr{198, 51, 100, 1})
	lb, err := payloadpark.NewLoadBalancer(map[string]payloadpark.IPv4Addr{
		"backend-0": {10, 2, 0, 10},
		"backend-1": {10, 2, 0, 11},
		"backend-2": {10, 2, 0, 12},
		"backend-3": {10, 2, 0, 13},
	})
	if err != nil {
		panic(err)
	}
	return payloadpark.NewChain(fw, nat, lb)
}

func run(sendGbps float64, pp bool) payloadpark.SimResult {
	cfg := payloadpark.SimConfig{
		Name:       "nfchain",
		LinkBps:    10e9,
		SendBps:    sendGbps * 1e9,
		Dist:       payloadpark.Datacenter(),
		Seed:       1,
		BuildChain: buildChain,
		Server:     payloadpark.DefaultServerModel(),
		WarmupNs:   5e6,
		MeasureNs:  20e6,
	}
	if pp {
		cfg.PayloadPark = true
		cfg.PP = payloadpark.Config{Slots: 16384, MaxExpiry: 1}
	}
	return payloadpark.Simulate(cfg)
}

func main() {
	fmt.Println("FW->NAT->LB on 10GbE, datacenter traffic (avg 882B, 30% small)")
	fmt.Println()
	fmt.Println("send(G)  baseline-goodput  pp-goodput  baseline-lat   pp-lat")
	for _, g := range []float64{4, 8, 10, 11, 12} {
		b := run(g, false)
		p := run(g, true)
		fmt.Printf("%5.0f    %.3f Gbps        %.3f Gbps  %8.1f us  %8.1f us\n",
			g, b.GoodputGbps, p.GoodputGbps, b.AvgLatencyUs, p.AvgLatencyUs)
	}
	fmt.Println()
	fmt.Println("past 10G the baseline link saturates: its latency spikes and goodput")
	fmt.Println("plateaus, while PayloadPark keeps fitting more headers into the same wire.")
}
