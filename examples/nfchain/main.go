// NF chain example: the paper's headline experiment (Fig. 7) in miniature.
// A FW -> NAT -> LB chain on a 10 GbE link receives enterprise-datacenter
// traffic; we compare baseline and PayloadPark deployments as the offered
// load crosses the link's capacity — one declarative sweep grid whose
// points run in parallel.
//
//	go run ./examples/nfchain
package main

import (
	"context"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func buildChain() *payloadpark.Chain {
	fw := payloadpark.NewFirewall(nil) // empty blacklist: nothing drops
	nat := payloadpark.NewNAT(payloadpark.IPv4Addr{198, 51, 100, 1})
	lb, err := payloadpark.NewLoadBalancer(map[string]payloadpark.IPv4Addr{
		"backend-0": {10, 2, 0, 10},
		"backend-1": {10, 2, 0, 11},
		"backend-2": {10, 2, 0, 12},
		"backend-3": {10, 2, 0, 13},
	})
	if err != nil {
		panic(err)
	}
	return payloadpark.NewChain(fw, nat, lb)
}

func main() {
	grid, err := payloadpark.RunSweep(context.Background(), payloadpark.Sweep{
		Base: payloadpark.Scenario{
			Name:     "nfchain",
			Topology: payloadpark.TestbedTopology{},
			Parking:  payloadpark.ParkingPolicy{Slots: 16384},
			Traffic:  payloadpark.Traffic{Dist: payloadpark.Datacenter()},
			Chain:    buildChain,
			Opts:     payloadpark.RunOptions{Seed: 1, WarmupNs: 5e6, MeasureNs: 20e6},
		},
		Axes: []payloadpark.Axis{
			payloadpark.SendGbpsAxis(4, 8, 10, 11, 12),
			payloadpark.ParkingAxis(payloadpark.ParkNoneMode, payloadpark.ParkEdgeMode),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FW->NAT->LB on 10GbE, datacenter traffic (avg 882B, 30% small)")
	fmt.Println()
	fmt.Println("send(G)  baseline-goodput  pp-goodput  baseline-lat   pp-lat")
	for i := 0; i < grid.Shape[0]; i++ {
		b, p := grid.At(i, 0).Report, grid.At(i, 1).Report
		fmt.Printf("%5s    %.3f Gbps        %.3f Gbps  %8.1f us  %8.1f us\n",
			grid.At(i, 0).Labels[0], b.GoodputGbps, p.GoodputGbps, b.AvgLatencyUs, p.AvgLatencyUs)
	}
	fmt.Println()
	fmt.Println("past 10G the baseline link saturates: its latency spikes and goodput")
	fmt.Println("plateaus, while PayloadPark keeps fitting more headers into the same wire.")
}
