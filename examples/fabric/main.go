// Fabric example: payload parking across a leaf-spine topology, driven
// through the unified Scenario API.
//
// The paper parks payloads at a single ToR switch; its §7 deployment
// story is a fabric. This example sweeps the same offered load through a
// 4-leaf, 2-spine fabric three ways — no parking, park-at-edge (payload
// parked at the ingress leaf, slim packets on every fabric hop), and
// park-at-every-hop (§7 striping: ingress leaf, spine, and egress leaf
// each park a block) — as one RunSweep grid whose points run in
// parallel, then demonstrates a link failure with a parking-safe reroute
// on a 6x3 fabric.
//
//	go run ./examples/fabric
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	payloadpark "github.com/payloadpark/payloadpark"
)

func avgUtil(links []payloadpark.LinkStats, pat string) float64 {
	var sum float64
	var n int
	for _, l := range links {
		if strings.Contains(l.Name, pat) {
			sum += l.UtilPct
			n++
		}
	}
	return sum / float64(n)
}

func main() {
	ctx := context.Background()

	fmt.Println("4x2 leaf-spine, 10GbE, datacenter packet mix, 11 Gbps offered per source")
	fmt.Println("(past the baseline fabric's saturation; within the slim-packet envelope)")
	fmt.Println()

	// One declarative grid: the parking mode is the axis, everything else
	// is the base scenario. The three points run in parallel workers.
	grid, err := payloadpark.RunSweep(ctx, payloadpark.Sweep{
		Base: payloadpark.Scenario{
			Name:     "fabric",
			Topology: payloadpark.LeafSpineTopology{Leaves: 4, Spines: 2},
			Traffic:  payloadpark.Traffic{SendBps: 11e9},
			Opts:     payloadpark.RunOptions{Seed: 7},
		},
		Axes: []payloadpark.Axis{
			payloadpark.ParkingAxis(
				payloadpark.ParkNoneMode, payloadpark.ParkEdgeMode, payloadpark.ParkEveryHopMode,
			),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mode       goodput    drop     lat      spine-util  nf-link-util")
	var base float64
	for _, pt := range grid.Points {
		r := pt.Report
		if base == 0 {
			base = r.GoodputGbps
		}
		fmt.Printf("%-9s  %.3f Gbps (%+.1f%%)  %.2f%%  %6.1fus  %5.1f%%  %5.1f%%\n",
			r.Mode, r.GoodputGbps, 100*(r.GoodputGbps/base-1),
			100*r.UnintendedDropRate, r.AvgLatencyUs,
			avgUtil(r.Fabric.Links, "->spine"), avgUtil(r.Fabric.Links, "->nf"))
	}
	fmt.Println()
	fmt.Println("edge parking keeps the same offered load healthy: every fabric hop")
	fmt.Println("carries slim packets. striping additionally unloads the NF links and")
	fmt.Println("spreads switch-memory pressure over the path.")

	// Failure scenario: flow 0's forward spine link dies mid-run; 2 ms
	// later the route repoints onto a third spine (with two spines the
	// alternate path would arrive on the egress leaf's merge port and be
	// dropped as foreign-tag merges — geometry matters).
	rep, err := payloadpark.Run(ctx, payloadpark.Scenario{
		Name:     "fabric-failure",
		Topology: payloadpark.LeafSpineTopology{Leaves: 6, Spines: 3, FailLink: true},
		Parking:  payloadpark.ParkingPolicy{Mode: payloadpark.ParkEdgeMode},
		Traffic:  payloadpark.Traffic{SendBps: 4.5e9},
		Opts:     payloadpark.RunOptions{Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	fr := rep.Fabric
	fmt.Println()
	fmt.Println("link failure on a 6x3 fabric (edge parking, 4.5 Gbps/source):")
	fmt.Printf("  flow 0 deliveries: pre-fail=%d  outage=%d  post-reroute=%d\n",
		fr.PhaseDelivered[0], fr.PhaseDelivered[1], fr.PhaseDelivered[2])
	var orphans int
	for _, sw := range fr.Switches {
		orphans += sw.Occupancy
	}
	fmt.Printf("  parked payloads orphaned by in-flight losses: %d (expiry eviction reclaims them)\n", orphans)
	fmt.Println("  the merge port pins the return path, so parked state survives the reroute.")
}
