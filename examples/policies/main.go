// Programmable-policies example: switch behaviour as data, not code.
//
// The PR 7 refactor turned the switch program layer into declarative
// table-program specs — parser geometry, match-action tables, and
// register layouts that serialize to JSON and compile against the same
// RMT stage/SRAM budgets as the paper's hard-coded pipeline. This
// example builds the ROHC-style header-compression policy, round-trips
// it through JSON (the committed compress-spec.json is exactly this
// output), and runs it on the canonical testbed next to a baseline —
// a new policy deployed with no Go code behind it.
//
//	go run ./examples/policies
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	// The built-in compression spec: park IPv4+UDP headers (21 B/packet)
	// in a switch context table across the NF round trip.
	spec := payloadpark.HeaderCompressProgramSpec(payloadpark.CompressSpecParams{Slots: 4096})

	// Policies are data: the spec serializes to JSON...
	wire, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec %q serializes to %d bytes of JSON (see compress-spec.json)\n\n", spec.Name, len(wire))

	// ...and a deserialized copy is all the switch needs. This is the
	// same path as `ppbench -program compress-spec.json`.
	var loaded payloadpark.ProgramSpec
	if err := json.Unmarshal(wire, &loaded); err != nil {
		log.Fatal(err)
	}

	base := payloadpark.Scenario{
		Name:     "policies-baseline",
		Topology: payloadpark.TestbedTopology{},
		Traffic:  payloadpark.Traffic{SendBps: 4e9, FixedSize: 512},
		Opts:     payloadpark.RunOptions{Seed: 1, Quick: true},
	}
	withPolicy := base
	withPolicy.Name = "policies-compress"
	withPolicy.Program = payloadpark.ProgramPolicy{Kind: "custom", Spec: &loaded}

	ctx := context.Background()
	baseRep, err := payloadpark.Run(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	compRep, err := payloadpark.Run(ctx, withPolicy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline:  goodput=%.3f Gbps  switch->NF=%.3f Gbps\n",
		baseRep.GoodputGbps, baseRep.Testbed.ToNFGbps)
	fmt.Printf("compress:  goodput=%.3f Gbps  switch->NF=%.3f Gbps\n",
		compRep.GoodputGbps, compRep.Testbed.ToNFGbps)
	for _, pc := range compRep.Programs {
		fmt.Printf("program %q: compressions=%d restores=%d contexts-leaked=%d\n",
			pc.Program, pc.Counters["compressions"], pc.Counters["restores"], pc.Occupancy)
	}
	saved := baseRep.Testbed.ToNFGbps - compRep.Testbed.ToNFGbps
	fmt.Printf("\nthe JSON-defined policy shaved %.3f Gbps off the NF link at identical goodput;\n", saved)
	fmt.Println("swapping in a different policy is a different JSON file, not a rebuild.")
}
