// Sweep example: the paper's evaluation is one grid — topology ×
// parking mode × traffic × calibration — and Sweep models that grid
// directly. This example reproduces the shape of Fig. 7 (goodput vs
// send rate, baseline vs PayloadPark) as a 2-axis grid whose points run
// in parallel across a worker pool, then shows cancellation: the same
// grid with a deadline context stops mid-simulation.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	base := payloadpark.Scenario{
		Name:     "fig7-shape",
		Topology: payloadpark.TestbedTopology{}, // 10 GbE Fig. 5 testbed
		Parking:  payloadpark.ParkingPolicy{Slots: 16384},
		Traffic:  payloadpark.Traffic{Dist: payloadpark.Datacenter()},
		Opts:     payloadpark.RunOptions{Seed: 1, Quick: true},
	}

	// 4 rates x 2 modes = 8 independent simulations, run in parallel.
	start := time.Now()
	grid, err := payloadpark.RunSweep(context.Background(), payloadpark.Sweep{
		Base: base,
		Axes: []payloadpark.Axis{
			payloadpark.SendGbpsAxis(4, 9, 10.5, 12),
			payloadpark.ParkingAxis(payloadpark.ParkNoneMode, payloadpark.ParkEdgeMode),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-point grid in %.1fs:\n\n", time.Since(start).Seconds())
	fmt.Println("send(Gbps)  base goodput  pp goodput  base drop%  pp drop%")
	for i := 0; i < grid.Shape[0]; i++ {
		b, p := grid.At(i, 0).Report, grid.At(i, 1).Report
		fmt.Printf("%-10s  %.3f Gbps    %.3f Gbps  %7.3f%%  %7.3f%%\n",
			grid.At(i, 0).Labels[0], b.GoodputGbps, p.GoodputGbps,
			100*b.UnintendedDropRate, 100*p.UnintendedDropRate)
	}
	fmt.Println("\npast 10G the baseline drops packets while parked traffic stays healthy.")

	// Cancellation reaches into running simulations: the event engine
	// polls the context every few thousand events, so even second-long
	// runs abort almost immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	long := base
	long.Opts.Quick = false
	long.Opts.MeasureNs = 2e9 // would take minutes per point
	start = time.Now()
	_, err = payloadpark.RunSweep(ctx, payloadpark.Sweep{
		Base: long,
		Axes: []payloadpark.Axis{payloadpark.SendGbpsAxis(4, 8, 12)},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("expected deadline error, got %v", err)
	}
	fmt.Printf("\na minutes-long sweep canceled after its 30ms deadline returned in %s.\n",
		time.Since(start).Round(time.Millisecond))
}
