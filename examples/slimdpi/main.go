// Slim-DPI example (§7, "Decoupling boundary"): a classifier that
// inspects only the first bytes of each payload keeps working on split
// packets when the decoupling boundary is moved past its inspection
// window — the variable-boundary extension the paper sketches.
//
//	go run ./examples/slimdpi
package main

import (
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	signature := []byte{0xde, 0xad, 0xbe, 0xef}

	run := func(boundary int) (*payloadpark.Deployment, *payloadpark.SlimDPINF) {
		dpi := payloadpark.NewSlimDPI(48, [][]byte{signature})
		dep, err := payloadpark.New(payloadpark.DeploymentConfig{
			Slots:          1024,
			BoundaryOffset: boundary,
			Chain:          payloadpark.NewChain(dpi),
		})
		if err != nil {
			log.Fatal(err)
		}
		return dep, dpi
	}

	// Boundary 64: the DPI's 48-byte window is fully visible to the NF
	// even while 160 bytes behind it are parked in the switch.
	dep, dpi := run(64)

	flow := payloadpark.FiveTuple{
		SrcIP: payloadpark.IPv4Addr{10, 0, 0, 1}, DstIP: payloadpark.IPv4Addr{10, 1, 0, 9},
		SrcPort: 5000, DstPort: 80, Protocol: 17,
	}
	delivered, blocked := 0, 0
	for i := 0; i < 1000; i++ {
		pkt := payloadpark.NewUDPPacket(flow, 700, uint16(i))
		if i%10 == 0 {
			copy(pkt.Payload[20:], signature) // malicious prefix
		}
		if out := dep.Process(pkt); out != nil {
			delivered++
		} else {
			blocked++
		}
	}

	c := dep.Counters()
	fmt.Printf("boundary offset: 64 B visible, %d B parked per packet\n", payloadpark.ParkBytes)
	fmt.Printf("delivered=%d blocked=%d (DPI matched %d signatures)\n", delivered, blocked, dpi.Matched())
	fmt.Printf("splits=%d merges=%d premature=%d\n",
		c.Splits.Value(), c.Merges.Value(), c.PrematureEvictions.Value())
	fmt.Println()
	fmt.Println("the classifier saw every signature although 160 bytes of each payload")
	fmt.Println("never left the switch — the decoupling boundary kept its window visible.")
}
