// Control-plane example: ECMP multipath routing and the fabric-wide
// adaptive parking controller, driven through the unified Scenario API.
//
// The paper sketches a dynamic eviction policy as future work (§7); the
// ROADMAP's fabric follow-up asks for ECMP route tables and a
// fabric-wide control plane. This example runs the 6x3 leaf-spine
// link-failure scenario twice at the same offered load — static routes
// with a 2 ms reroute delay, then ECMP hash groups under a controller
// that reads link telemetry every 250 µs — and prints the controller's
// decision timeline: the dead spine leaves flow 0's hash group one tick
// after the failure, and Maglev membership moves only the flows that
// rode it, so the payloads parked at the ingress leaf keep merging.
//
//	go run ./examples/ctrl
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	ctx := context.Background()

	mk := func(name string, ctl payloadpark.Control) payloadpark.Scenario {
		return payloadpark.Scenario{
			Name: name,
			Topology: payloadpark.LeafSpineTopology{
				Leaves: 6, Spines: 3,
				FailLink: true, FailAtNs: 6_100_000, RerouteNs: 2e6,
			},
			Parking: payloadpark.ParkingPolicy{Mode: payloadpark.ParkEdgeMode},
			Control: ctl,
			Traffic: payloadpark.Traffic{SendBps: 4.5e9},
			Opts:    payloadpark.RunOptions{Seed: 7, WarmupNs: 2e6, MeasureNs: 24e6},
		}
	}

	fmt.Println("6x3 leaf-spine, edge parking, 4.5 Gbps/source; flow 0's forward")
	fmt.Println("spine link dies at 6.1 ms.")
	fmt.Println()

	static, err := payloadpark.Run(ctx, mk("static", payloadpark.Control{}))
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := payloadpark.Run(ctx, mk("ecmp+adaptive",
		payloadpark.Control{ECMP: true, Adaptive: true}))
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, r *payloadpark.Report) {
		fmt.Printf("%-14s goodput=%.3f Gbps  flow-0 deliveries pre/outage/post = %v  premature=%d\n",
			label, r.GoodputGbps, r.Fabric.PhaseDelivered, r.Premature)
	}
	show("static:", static)
	show("ecmp+adaptive:", ctl)

	fmt.Println()
	fmt.Println("controller decision timeline:")
	for _, d := range ctl.Control.Decisions {
		fmt.Printf("  %8.3f ms  %-8s %-12s %s\n", float64(d.AtNs)/1e6, d.Kind, d.Target, d.Detail)
	}
	fmt.Printf("(%d telemetry ticks every %.0f us; reroute landed one tick after the failure,\n",
		ctl.Control.Ticks, float64(ctl.Control.PeriodNs)/1e3)
	fmt.Println(" vs the static path's 2 ms detection+programming delay)")

	// Every Scenario — including the control-plane spec — serializes;
	// `ppbench -scenario file.json` runs the same file.
	wire, err := json.MarshalIndent(mk("from-a-file", payloadpark.Control{ECMP: true, Adaptive: true}), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("the same scenario as a file for `ppbench -scenario`:")
	fmt.Printf("%s\n", wire)
}
