// Multi-server example (§6.2.3): eight NF servers share one switch, two
// per pipe, with the reserved switch memory statically sliced between
// them. Performance isolation means every server sees the same gain.
//
//	go run ./examples/multiserver
package main

import (
	"fmt"

	payloadpark "github.com/payloadpark/payloadpark"
)

func run(pp bool, sendGbps float64) payloadpark.MultiServerResult {
	return payloadpark.SimulateMultiServer(payloadpark.MultiServerConfig{
		Servers:        8,
		LinkBps:        10e9,
		SendBps:        sendGbps * 1e9,
		Dist:           payloadpark.Fixed(384), // small packets stress switch memory
		SlotsPerServer: 12000,
		MaxExpiry:      1,
		PayloadPark:    pp,
		Seed:           7,
		WarmupNs:       5e6,
		MeasureNs:      20e6,
	})
}

func main() {
	// Run just past the baseline link's saturation point so the gain shows.
	base := run(false, 12)
	pp := run(true, 12)

	fmt.Println("8 NF servers (MAC-swap), 384B packets, 12 Gbps offered per server (baseline link caps at ~9.4)")
	fmt.Println()
	fmt.Println("server   baseline-goodput   payloadpark-goodput")
	for i := range base.PerServer {
		fmt.Printf("  %d      %.3f Gbps         %.3f Gbps\n",
			i+1, base.PerServer[i].GoodputGbps, pp.PerServer[i].GoodputGbps)
	}
	fmt.Printf("\nshared switch SRAM with 8 sliced tables: %.1f%% avg / %.1f%% peak per stage\n",
		pp.SRAMAvgPct, pp.SRAMPeakPct)
	fmt.Println("every server improves by the same factor: static slicing isolates tenants.")
}
