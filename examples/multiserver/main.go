// Multi-server example (§6.2.3), driven through the unified Scenario
// API: eight NF servers share one switch, two per pipe, with the
// reserved switch memory statically sliced between them. Performance
// isolation means every server sees the same gain.
//
// Each server is an 8-core Xeon whose NIC spreads flows over per-core RX
// queues with an RSS hash; -cores sweeps that core count (one RunSweep
// grid) to show saturation emerging from per-core queues.
//
//	go run ./examples/multiserver [-cores 1,2,4,8]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	payloadpark "github.com/payloadpark/payloadpark"
)

// headerGbps converts a delivered packet rate into the paper's
// header-unit goodput (42 B of useful header per packet, §6.1).
// SimResult.GoodputGbps holds the bits that actually crossed the to-NF
// link (full packets for baseline, header remainders for PayloadPark),
// so the two metrics answer different questions: how loaded is the link
// vs how many useful headers reached the NF.
func headerGbps(r payloadpark.SimResult) float64 {
	return r.ToNFMpps * 1e6 * payloadpark.HeaderUnitLen * 8 / 1e9
}

// scenario builds the 8-server run; the parking mode is the only knob
// the comparison turns.
func scenario(mode payloadpark.ParkMode, sendGbps float64) payloadpark.Scenario {
	return payloadpark.Scenario{
		Name:     "multiserver",
		Topology: payloadpark.MultiServerTopology{Servers: 8},
		Parking:  payloadpark.ParkingPolicy{Mode: mode, Slots: 12000},
		Traffic:  payloadpark.Traffic{SendBps: sendGbps * 1e9, Dist: payloadpark.Fixed(384)},
		Opts:     payloadpark.RunOptions{Seed: 7, WarmupNs: 5e6, MeasureNs: 20e6},
	}
}

func main() {
	coresFlag := flag.String("cores", "", "comma-separated core counts to sweep (e.g. 1,2,4,8)")
	flag.Parse()
	ctx := context.Background()

	// Run just past the baseline link's saturation point so the gain
	// shows. One grid, two points, run in parallel.
	grid, err := payloadpark.RunSweep(ctx, payloadpark.Sweep{
		Base: scenario(payloadpark.ParkNoneMode, 12),
		Axes: []payloadpark.Axis{
			payloadpark.ParkingAxis(payloadpark.ParkNoneMode, payloadpark.ParkEdgeMode),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	base, pp := grid.Points[0].Report.MultiServer, grid.Points[1].Report.MultiServer

	fmt.Println("8 NF servers (MAC-swap), 384B packets, 12 Gbps offered per server (baseline link caps at ~9.4)")
	fmt.Println()
	fmt.Println("server   baseline            payloadpark         (header-unit goodput | delivered link bits)")
	for i := range base.PerServer {
		b, p := base.PerServer[i], pp.PerServer[i]
		fmt.Printf("  %d      %.3f | %.2f Gbps   %.3f | %.2f Gbps\n",
			i+1, headerGbps(b), b.GoodputGbps, headerGbps(p), p.GoodputGbps)
	}
	fmt.Printf("\nshared switch SRAM with 8 sliced tables: %.1f%% avg / %.1f%% peak per stage\n",
		pp.SRAMAvgPct, pp.SRAMPeakPct)
	fmt.Println("every server improves by the same factor: static slicing isolates tenants.")

	if *coresFlag == "" {
		return
	}
	var counts []int
	for _, f := range strings.Split(*coresFlag, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 || c > 64 {
			log.Fatalf("bad core count %q (want 1..64)", f)
		}
		counts = append(counts, c)
	}

	// The core sweep is a CoresAxis grid over a 2-server scenario.
	sweep, err := payloadpark.RunSweep(ctx, payloadpark.Sweep{
		Base: payloadpark.Scenario{
			Name:     "cores",
			Topology: payloadpark.MultiServerTopology{Servers: 2},
			Parking:  payloadpark.ParkingPolicy{Slots: 12000},
			Traffic:  payloadpark.Traffic{SendBps: 8e9, Dist: payloadpark.Fixed(384)},
			Server:   payloadpark.MultiServerModel(),
			Opts:     payloadpark.RunOptions{Seed: 7, WarmupNs: 5e6, MeasureNs: 20e6},
		},
		Axes: []payloadpark.Axis{payloadpark.CoresAxis(counts...)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("core sweep (MultiServerModel per-core costs, 8 Gbps offered, baseline):")
	fmt.Println("cores   drop-rate   avg-latency")
	for _, pt := range sweep.Points {
		r := pt.Report.MultiServer.PerServer[0]
		fmt.Printf("  %s     %6.2f%%     %8.1f us\n", pt.Labels[0], 100*r.UnintendedDropRate, r.AvgLatencyUs)
	}
	fmt.Println("per-core RX queues saturate one by one: drops vanish once the core count covers the offered load.")
}
