// Live example: the same parking deployment on real UDP loopback
// sockets instead of the simulator.
//
// A LiveTopology scenario brings up an actual packet fabric: one worker
// socket per RMT pipe in use, a generator and an NF daemon on their own
// sockets, Ethernet-over-UDP frames on the wire. In lockstep mode the
// run replays every frame one at a time and the merged switch counters
// are held to exact equality with an in-process reference replay — the
// same parity the CI live-smoke gate enforces. Throughput mode blasts
// the fabric open-loop and reports the loopback wire rate.
//
//	go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	ctx := context.Background()

	// Lockstep: 64 frames through gen -> switch (parking) -> NF -> back,
	// with the NF dropping a quarter of the slim packets so eviction and
	// expiry paths run too.
	rep, err := payloadpark.Run(ctx, payloadpark.Scenario{
		Name:     "live-lockstep",
		Topology: payloadpark.LiveTopology{Geometry: "chain", Frames: 64, Lockstep: true, DropFraction: 0.25},
		Parking:  payloadpark.ParkingPolicy{Mode: payloadpark.ParkEdgeMode, Slots: 16, ExplicitDrop: true},
		Traffic:  payloadpark.Traffic{FixedSize: 512, Flows: 32},
		Opts:     payloadpark.RunOptions{Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Live
	fmt.Printf("lockstep chain: sent %d, delivered %d, NF dropped %d, drop notices %d\n",
		res.Sent, res.Delivered, res.NFDropped, res.NFNotified)
	fmt.Printf("  switch counters: %d splits, %d merges, %d explicit drops, %d evictions\n",
		res.Counters.Splits, res.Counters.Merges, res.Counters.ExplicitDrops, res.Counters.Evictions)

	// Every frame above crossed real sockets; `ppbench -exp live` replays
	// the same sequences through the in-process pipelines and holds these
	// counters to exact equality (the CI live-smoke hard gate).

	// Throughput: open-loop blast over loopback, no lockstep barrier.
	fmt.Println()
	rep, err = payloadpark.Run(ctx, payloadpark.Scenario{
		Name:     "live-throughput",
		Topology: payloadpark.LiveTopology{Geometry: "chain", Frames: 4000, Window: 256},
		Parking:  payloadpark.ParkingPolicy{Mode: payloadpark.ParkEdgeMode, Slots: 1024},
		Traffic:  payloadpark.Traffic{FixedSize: 882, Flows: 64},
		Opts:     payloadpark.RunOptions{Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	res = rep.Live
	fmt.Printf("throughput chain: %d frames delivered, %.1f kpps, %.3f Gbps over loopback\n",
		res.Delivered, res.PPS/1e3, res.Gbps)
}
