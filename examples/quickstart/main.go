// Quickstart: park one packet's payload in the switch, process the header
// through an NF, and get the byte-identical packet back — then run the
// same deployment as a timed scenario through the unified Run
// entrypoint.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	// A PayloadPark deployment: RMT switch with the Split/Merge program
	// installed, in front of a MAC-swapping NF (the paper's functional-
	// equivalence NF, §6.2.6).
	dep, err := payloadpark.New(payloadpark.DeploymentConfig{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}

	flow := payloadpark.FiveTuple{
		SrcIP: payloadpark.IPv4Addr{10, 0, 0, 1}, DstIP: payloadpark.IPv4Addr{10, 1, 0, 9},
		SrcPort: 5000, DstPort: 80, Protocol: 17,
	}
	pkt := payloadpark.NewUDPPacket(flow, 882, 1) // the workload's average size
	original := pkt.Clone()

	fmt.Printf("in : %d bytes on the wire (%d payload)\n", pkt.Len(), len(pkt.Payload))

	out := dep.Process(pkt)
	if out == nil {
		log.Fatal("packet dropped")
	}

	fmt.Printf("out: %d bytes, payload intact: %t\n",
		out.Len(), bytes.Equal(out.Payload, original.Payload))

	c := dep.Counters()
	fmt.Printf("switch: splits=%d merges=%d premature-evictions=%d\n",
		c.Splits.Value(), c.Merges.Value(), c.PrematureEvictions.Value())
	fmt.Printf("while parked, only %d bytes crossed the switch->NF link instead of %d\n",
		original.Len()-payloadpark.ParkBytes+7, original.Len())

	r := dep.Resources()
	fmt.Printf("switch resources: SRAM %.2f%% avg, PHV %.1f%%, VLIW %.1f%%\n",
		r.SRAMAvgPct, r.PHVPct, r.VLIWPct)

	// The same deployment as a timed measurement: one Scenario, one Run.
	// A Scenario composes a topology (here the paper's Fig. 5 testbed), a
	// parking policy, traffic, and run options; the Report carries the
	// paper's metrics for any topology.
	rep, err := payloadpark.Run(context.Background(), payloadpark.Scenario{
		Name:     "quickstart",
		Topology: payloadpark.TestbedTopology{},
		Parking:  payloadpark.ParkingPolicy{Mode: payloadpark.ParkEdgeMode, Slots: 1024},
		Traffic:  payloadpark.Traffic{SendBps: 8e9, Dist: payloadpark.Datacenter()},
		Opts:     payloadpark.RunOptions{Seed: 1, Quick: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 8 Gbps for %s: goodput=%.3f Gbps, avg latency=%.1fus, healthy=%t\n",
		rep.Scenario, rep.GoodputGbps, rep.AvgLatencyUs, rep.Healthy)
	fmt.Printf("splits=%d merges=%d on the simulated switch\n",
		rep.Testbed.Splits, rep.Testbed.Merges)
}
