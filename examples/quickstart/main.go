// Quickstart: park one packet's payload in the switch, process the header
// through an NF, and get the byte-identical packet back.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	// A PayloadPark deployment: RMT switch with the Split/Merge program
	// installed, in front of a MAC-swapping NF (the paper's functional-
	// equivalence NF, §6.2.6).
	dep, err := payloadpark.New(payloadpark.DeploymentConfig{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}

	flow := payloadpark.FiveTuple{
		SrcIP: payloadpark.IPv4Addr{10, 0, 0, 1}, DstIP: payloadpark.IPv4Addr{10, 1, 0, 9},
		SrcPort: 5000, DstPort: 80, Protocol: 17,
	}
	pkt := payloadpark.NewUDPPacket(flow, 882, 1) // the workload's average size
	original := pkt.Clone()

	fmt.Printf("in : %d bytes on the wire (%d payload)\n", pkt.Len(), len(pkt.Payload))

	out := dep.Process(pkt)
	if out == nil {
		log.Fatal("packet dropped")
	}

	fmt.Printf("out: %d bytes, payload intact: %t\n",
		out.Len(), bytes.Equal(out.Payload, original.Payload))

	c := dep.Counters()
	fmt.Printf("switch: splits=%d merges=%d premature-evictions=%d\n",
		c.Splits.Value(), c.Merges.Value(), c.PrematureEvictions.Value())
	fmt.Printf("while parked, only %d bytes crossed the switch->NF link instead of %d\n",
		original.Len()-payloadpark.ParkBytes+7, original.Len())

	r := dep.Resources()
	fmt.Printf("switch resources: SRAM %.2f%% avg, PHV %.1f%%, VLIW %.1f%%\n",
		r.SRAMAvgPct, r.PHVPct, r.VLIWPct)
}
