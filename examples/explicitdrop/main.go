// Explicit-drop example (§6.2.4): when the NF framework is taught about
// PayloadPark (a ~50-line change in OpenNetVM), dropped packets generate
// notifications that reclaim parked payloads immediately instead of
// waiting for the expiry countdown.
//
//	go run ./examples/explicitdrop
package main

import (
	"fmt"
	"log"

	payloadpark "github.com/payloadpark/payloadpark"
)

func main() {
	run := func(explicit bool) {
		// A firewall blacklisting 10.0.0.0/9: roughly half the flows
		// drop at the NF server.
		chain := payloadpark.NewChain(payloadpark.NewFirewall([]payloadpark.FirewallRule{
			{Prefix: payloadpark.IPv4Addr{10, 0, 0, 0}, Bits: 9},
		}))
		dep, err := payloadpark.New(payloadpark.DeploymentConfig{
			Slots: 64, Chain: chain, ExplicitDrop: explicit, MaxExpiry: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		delivered := 0
		for i := 0; i < 200; i++ {
			flow := payloadpark.FiveTuple{
				SrcIP:   payloadpark.IPv4Addr{10, byte(i), 0, 1},
				DstIP:   payloadpark.IPv4Addr{10, 1, 0, 9},
				SrcPort: uint16(5000 + i), DstPort: 80, Protocol: 17,
			}
			if out := dep.Process(payloadpark.NewUDPPacket(flow, 500, uint16(i))); out != nil {
				delivered++
			}
		}
		c := dep.Counters()
		fmt.Printf("explicit-drop=%-5t delivered=%3d splits=%3d merges=%3d explicitDrops=%3d occupied-skips=%3d occupied-now=%2d\n",
			explicit, delivered, c.Splits.Value(), c.Merges.Value(),
			c.ExplicitDrops.Value(), c.OccupiedSkips.Value(), dep.Occupancy())
	}

	fmt.Println("firewall drops ~half the flows; table has only 64 slots, EXP=10 (conservative)")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("without explicit drops, dropped packets' payloads sit in the table until the")
	fmt.Println("conservative expiry evicts them — later packets find slots occupied (skips)")
	fmt.Println("and ride whole; with notifications the slots free instantly.")
}
