//lint:file-ignore SA1019 the legacy entrypoints stay covered until removal
package payloadpark

import (
	"bytes"
	"testing"
	"testing/quick"
)

var testFlow = FiveTuple{
	SrcIP: IPv4Addr{10, 0, 0, 1}, DstIP: IPv4Addr{10, 1, 0, 9},
	SrcPort: 5000, DstPort: 80, Protocol: 17,
}

func TestDeploymentRoundTrip(t *testing.T) {
	d, err := New(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewUDPPacket(testFlow, 882, 1)
	want := in.Clone()
	out := d.Process(in)
	if out == nil {
		t.Fatal("packet dropped")
	}
	if !bytes.Equal(out.Payload, want.Payload) {
		t.Error("payload corrupted through deployment")
	}
	c := d.Counters()
	if c.Splits.Value() != 1 || c.Merges.Value() != 1 {
		t.Errorf("splits=%d merges=%d", c.Splits.Value(), c.Merges.Value())
	}
	if d.Occupancy() != 0 {
		t.Errorf("occupancy = %d after merge", d.Occupancy())
	}
}

func TestDeploymentMatchesBaseline(t *testing.T) {
	pp, err := New(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(DeploymentConfig{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(extra uint16, id uint16) bool {
		size := 42 + int(extra)%1459
		a := NewUDPPacket(testFlow, size, id)
		b := a.Clone()
		outA := pp.Process(a)
		outB := base.Process(b)
		if outA == nil || outB == nil {
			return false
		}
		return bytes.Equal(outA.Serialize(), outB.Serialize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if pp.Counters().PrematureEvictions.Value() != 0 {
		t.Error("premature evictions in equivalence run")
	}
}

func TestDeploymentFrameLevel(t *testing.T) {
	d, err := New(DeploymentConfig{Slots: 128})
	if err != nil {
		t.Fatal(err)
	}
	in := NewUDPPacket(testFlow, 700, 3)
	want := in.Clone()
	frame, err := d.ProcessFrame(in.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if frame == nil {
		t.Fatal("frame dropped")
	}
	// The MAC-swap NF flips L2 addresses; everything else is intact.
	wantOut := want.Clone()
	wantOut.Eth.Src, wantOut.Eth.Dst = want.Eth.Dst, want.Eth.Src
	if !bytes.Equal(frame, wantOut.Serialize()) {
		t.Error("frame-level round trip mismatch")
	}
}

func TestDeploymentWithChain(t *testing.T) {
	lb, err := NewLoadBalancer(map[string]IPv4Addr{
		"b0": {10, 2, 0, 10}, "b1": {10, 2, 0, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(NewNAT(IPv4Addr{198, 51, 100, 1}), lb)
	d, err := New(DeploymentConfig{Chain: chain})
	if err != nil {
		t.Fatal(err)
	}
	in := NewUDPPacket(testFlow, 900, 1)
	origPayload := append([]byte(nil), in.Payload...)
	// The NAT/LB chain does not swap MACs, so the switch forwards to the
	// NF MAC again on return; rewrite toward the sink as a framework
	// would. Here we drive the pieces manually via Process, whose
	// embedded server handles it; we only check the data path.
	out := d.Process(in)
	if out == nil {
		t.Skip("chain without MAC handling returns toward NF; covered in sim tests")
	}
	if !bytes.Equal(out.Payload, origPayload) {
		t.Error("payload corrupted")
	}
}

func TestDeploymentRecirculation(t *testing.T) {
	d, err := New(DeploymentConfig{Recirculate: true})
	if err != nil {
		t.Fatal(err)
	}
	in := NewUDPPacket(testFlow, 1200, 1)
	want := in.Clone()
	out := d.Process(in)
	if out == nil {
		t.Fatal("dropped")
	}
	if !bytes.Equal(out.Payload, want.Payload) {
		t.Error("payload corrupted through recirculation")
	}
	if d.Counters().Splits.Value() != 1 {
		t.Error("no split in recirculation mode")
	}
}

func TestDeploymentResources(t *testing.T) {
	d, err := New(DeploymentConfig{Slots: 16384})
	if err != nil {
		t.Fatal(err)
	}
	r := d.Resources()
	if r.SRAMAvgPct <= 0 || r.PHVPct <= 0 || r.VLIWPct <= 0 {
		t.Errorf("resource report empty: %+v", r)
	}
	if r.SRAMPeakPct < r.SRAMAvgPct {
		t.Errorf("peak < avg: %+v", r)
	}
}

func TestDeploymentBadConfig(t *testing.T) {
	if _, err := New(DeploymentConfig{Slots: -1}); err == nil {
		t.Error("negative slots accepted")
	}
}

func TestSimulateSmoke(t *testing.T) {
	res := Simulate(SimConfig{
		Name: "api-smoke", LinkBps: 10e9, SendBps: 3e9,
		Dist: Datacenter(), Seed: 1,
		BuildChain:  func() *Chain { return NewChain(NewNAT(IPv4Addr{198, 51, 100, 1})) },
		Server:      DefaultServerModel(),
		PayloadPark: true,
		PP:          Config{Slots: 8192, MaxExpiry: 1},
		WarmupNs:    1e6, MeasureNs: 5e6,
	})
	if res.GoodputGbps <= 0 || !res.Healthy {
		t.Errorf("simulation result: %+v", res)
	}
	if res.Splits == 0 {
		t.Error("no splits recorded")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 13 {
		t.Fatalf("experiments = %d, want >= 13", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("incomplete experiment: %+v", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table1", "equiv", "s621"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment("nope", true, 1, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentFig6(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("fig6", true, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestConstants(t *testing.T) {
	if ParkBytes != 160 || ParkBytesRecirculated != 384 || HeaderUnitLen != 42 {
		t.Errorf("paper constants drifted: %d %d %d", ParkBytes, ParkBytesRecirculated, HeaderUnitLen)
	}
}

// TestSlimDPIWithBoundary is the §7 use case end-to-end: a Slim-DPI NF
// inspecting the first 48 payload bytes sees identical bytes whether or
// not PayloadPark is parking the rest of the payload, provided the
// decoupling boundary covers its prefix.
func TestSlimDPIWithBoundary(t *testing.T) {
	mkDep := func(baseline bool) (*Deployment, *SlimDPINF) {
		dpi := NewSlimDPI(48, [][]byte{{0xde, 0xad, 0xbe, 0xef}})
		dep, err := New(DeploymentConfig{
			Slots:          512,
			BoundaryOffset: 64,
			Chain:          NewChain(dpi, NewNAT(IPv4Addr{198, 51, 100, 1})),
			Baseline:       baseline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dep, dpi
	}
	ppDep, ppDPI := mkDep(false)
	baseDep, baseDPI := mkDep(true)

	evil := 0
	for i := 0; i < 200; i++ {
		a := NewUDPPacket(testFlow, 600, uint16(i))
		// Plant the signature inside the inspected prefix on every 5th
		// packet.
		if i%5 == 0 {
			copy(a.Payload[10:], []byte{0xde, 0xad, 0xbe, 0xef})
			evil++
		}
		b := a.Clone()
		outA := ppDep.Process(a)
		outB := baseDep.Process(b)
		if (outA == nil) != (outB == nil) {
			t.Fatalf("packet %d: verdicts diverge between deployments", i)
		}
		if outA != nil && !bytes.Equal(outA.Serialize(), outB.Serialize()) {
			t.Fatalf("packet %d: outputs diverge", i)
		}
	}
	if ppDPI.Matched() != uint64(evil) || baseDPI.Matched() != uint64(evil) {
		t.Errorf("matched pp=%d base=%d, want %d", ppDPI.Matched(), baseDPI.Matched(), evil)
	}
	if ppDep.Counters().Splits.Value() == 0 {
		t.Error("payloadpark was not actually parking")
	}
}

func TestDeploymentSwitchDrops(t *testing.T) {
	d, err := New(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A packet to an unknown MAC is dropped and accounted.
	pkt := NewUDPPacket(testFlow, 200, 1)
	pkt.Eth.Dst = MAC{9, 9, 9, 9, 9, 9}
	if out := d.Process(pkt); out != nil {
		t.Fatal("unknown MAC delivered")
	}
	drops := d.SwitchDrops()
	if len(drops) == 0 {
		t.Error("no drops recorded")
	}
	// The returned map is a copy.
	drops["tampered"] = 99
	if _, ok := d.SwitchDrops()["tampered"]; ok {
		t.Error("SwitchDrops leaked internal state")
	}
}

func TestProcessFrameErrors(t *testing.T) {
	d, err := New(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessFrame([]byte{1, 2, 3}); err == nil {
		t.Error("garbage frame accepted")
	}
	// A dropped frame (unknown MAC) returns nil, nil.
	pkt := NewUDPPacket(testFlow, 200, 1)
	pkt.Eth.Dst = MAC{9, 9, 9, 9, 9, 9}
	out, err := d.ProcessFrame(pkt.Serialize())
	if err != nil || out != nil {
		t.Errorf("dropped frame: out=%v err=%v", out, err)
	}
}

func TestSimulateMultiServerFacade(t *testing.T) {
	res := SimulateMultiServer(MultiServerConfig{
		Servers: 2, LinkBps: 10e9, SendBps: 2e9,
		Dist: Fixed(384), SlotsPerServer: 2048, MaxExpiry: 1,
		PayloadPark: true, Seed: 1, WarmupNs: 1e6, MeasureNs: 4e6,
	})
	if len(res.PerServer) != 2 || res.PerServer[0].GoodputGbps <= 0 {
		t.Errorf("facade multi-server run: %+v", res)
	}
}

func TestBaselineDeploymentCountersZero(t *testing.T) {
	d, err := New(DeploymentConfig{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Process(NewUDPPacket(testFlow, 500, 1))
	if d.Counters().Splits.Value() != 0 || d.Occupancy() != 0 {
		t.Error("baseline deployment has program state")
	}
	r := d.Resources()
	if r.SRAMAvgPct != 0 {
		t.Errorf("baseline SRAM = %v", r.SRAMAvgPct)
	}
}
