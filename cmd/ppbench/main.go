// Command ppbench regenerates the paper's tables and figures from the
// simulation harness.
//
// Usage:
//
//	ppbench -list
//	ppbench -exp fig7 [-quick] [-seed N]
//	ppbench -exp all  [-quick]
//	ppbench -parallel [-quick] [-seed N]
//	ppbench -cores 1,2,4,8 [-quick] [-seed N]
//	ppbench -topology 4x2 [-json BENCH_fabric.json] [-quick] [-seed N]
//
// -parallel skips the discrete-event harness and drives the raw dataplane
// across all four pipes, sequentially and then with one worker per pipe,
// reporting the throughput of each (the multi-pipe scaling headroom).
//
// -cores sweeps the NF server's core count through the RSS-sharded server
// model, reporting the saturation knee and the Fig. 14-class eviction
// onset at each count (the registered "cores" experiment with a custom
// core list).
//
// -topology runs the leaf-spine fabric experiment family (parking-mode
// comparison, link-failure reroute, per-switch parallel drivers) on the
// given LxS geometry; -json additionally writes the machine-readable
// results to a BENCH artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/payloadpark/payloadpark/internal/harness"
	"github.com/payloadpark/payloadpark/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		exp      = flag.String("exp", "", "experiment id (e.g. fig7, table1) or 'all'")
		quick    = flag.Bool("quick", false, "shorter windows and sparser sweeps")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Bool("parallel", false, "drive the raw dataplane sequentially vs one worker per pipe")
		cores    = flag.String("cores", "", "comma-separated NF-server core counts to sweep (e.g. 1,2,4,8)")
		topology = flag.String("topology", "", "leaf-spine geometry LxS (e.g. 4x2): run the fabric experiment family")
		jsonOut  = flag.String("json", "", "with -topology: write machine-readable results to this file")
	)
	flag.Parse()

	if *parallel {
		runParallel(*quick, *seed)
		return
	}

	if *topology != "" {
		if err := runTopology(*topology, *jsonOut, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cores != "" {
		counts, err := parseCores(*cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		if err := harness.RunCoreSweep(harness.Options{Quick: *quick, Seed: *seed}, counts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: core sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := harness.Options{Quick: *quick, Seed: *seed}
	run := func(e harness.Experiment) error {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n", e.Paper)
		start := time.Now()
		err := e.Run(opts, os.Stdout)
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		return err
	}

	if *exp == "all" {
		for _, e := range harness.All() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "ppbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := harness.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
		os.Exit(1)
	}
}

// parseCores parses the -cores list.
func parseCores(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 || n > 64 {
			return nil, fmt.Errorf("bad core count %q (want 1..64)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runTopology runs the fabric experiment family and optionally exports
// the results as JSON.
func runTopology(topo, jsonPath string, quick bool, seed int64) error {
	start := time.Now()
	fmt.Printf("== fabric: leaf-spine %s experiment family\n", topo)
	var suite harness.FabricSuite
	if err := harness.RunFabricSuite(harness.Options{Quick: quick, Seed: seed}, topo, &suite, os.Stdout); err != nil {
		return err
	}
	fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(&suite, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n", jsonPath)
	return nil
}

// runParallel compares the sequential and multi-pipe dataplane drivers on
// identical traffic.
func runParallel(quick bool, seed int64) {
	cfg := sim.DataplaneConfig{Seed: seed}
	if quick {
		cfg.Packets = 256
		cfg.Rounds = 16
	}
	fmt.Println("== dataplane: 4-pipe split+merge round trips, batched injection")
	cfg.Parallel = false
	seqRes := sim.RunDataplane(cfg)
	fmt.Printf("   sequential: %s\n", seqRes)
	cfg.Parallel = true
	parRes := sim.RunDataplane(cfg)
	fmt.Printf("   parallel:   %s\n", parRes)
	if parRes.Mpps > 0 && seqRes.Mpps > 0 {
		fmt.Printf("   speedup: %.2fx across %d pipe workers\n", parRes.Mpps/seqRes.Mpps, parRes.Workers)
	}
}
