// Command ppbench regenerates the paper's tables and figures from the
// simulation harness.
//
// Usage:
//
//	ppbench -list
//	ppbench -exp fig7 [-quick] [-seed N]
//	ppbench -exp all  [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/payloadpark/payloadpark/internal/harness"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id (e.g. fig7, table1) or 'all'")
		quick = flag.Bool("quick", false, "shorter windows and sparser sweeps")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := harness.Options{Quick: *quick, Seed: *seed}
	run := func(e harness.Experiment) error {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n", e.Paper)
		start := time.Now()
		err := e.Run(opts, os.Stdout)
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		return err
	}

	if *exp == "all" {
		for _, e := range harness.All() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "ppbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := harness.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
		os.Exit(1)
	}
}
