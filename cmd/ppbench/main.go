// Command ppbench regenerates the paper's tables and figures from the
// simulation harness, which itself runs on the unified Scenario API
// (payloadpark.Run / RunSweep): every experiment is a declarative grid
// or peak search over Scenarios, runs grid points in parallel, and
// aborts promptly on Ctrl-C (context cancellation reaches into running
// simulations).
//
// Usage:
//
//	ppbench -list
//	ppbench -exp fig7 [-quick] [-seed N] [-json out.json]
//	ppbench -exp live [-quick] [-json BENCH_live.json]
//	ppbench -exp all  [-quick] [-json out.json]
//	ppbench -exp scale -partitions 1,2,4,8 [-quick] [-json BENCH_scale.json]
//	ppbench -parallel [-quick] [-seed N]
//	ppbench -cores 1,2,4,8 [-quick] [-seed N] [-json out.json]
//	ppbench -topology 4x2 [-json BENCH_fabric.json] [-quick] [-seed N]
//	ppbench -scenario file.json [-json report.json] [-quick] [-seed N]
//	ppbench -program spec.json [-json report.json] [-quick] [-seed N]
//	ppbench -trace trace.json [-scenario file.json] [-quick] [-seed N] [-partitions K]
//
// -json writes the experiment's structured result (the same data the
// text tables render) as a machine-readable artifact; it works for
// every experiment, not just the fabric family.
//
// -partitions sets the partition-count series the scale experiment
// sweeps; a single value also applies to a -scenario run whose file
// leaves opts.partitions unset (results are byte-identical either way —
// partitioning only changes wall-clock time).
//
// -cpuprofile and -memprofile write pprof CPU and heap profiles of the
// run (flushed on exit, including failure exits).
//
// -parallel skips the discrete-event harness and drives the raw dataplane
// across all four pipes, sequentially and then with one worker per pipe,
// reporting the throughput of each (the multi-pipe scaling headroom).
//
// -cores sweeps the NF server's core count through the RSS-sharded server
// model, reporting the saturation knee and the Fig. 14-class eviction
// onset at each count (the registered "cores" experiment with a custom
// core list).
//
// -topology runs the leaf-spine fabric experiment family (parking-mode
// comparison, link-failure reroute, per-switch parallel drivers) on the
// given LxS geometry.
//
// -scenario loads a serialized Scenario (the JSON form payloadpark.Run
// accepts, with the topology as a {"kind","config"} envelope), runs it,
// and prints the structured Report — including the control-plane
// decision timeline when the scenario attaches a controller.
//
// -program loads a bare serialized table-program spec (the declarative
// internal/prog form, e.g. examples/policies/compress-spec.json), runs
// it as a custom policy on the canonical testbed, and prints the Report
// with the program's counters — new policies are JSON, not Go.
//
// -trace turns on the packet-lifecycle flight recorder and writes the
// recording as Chrome trace-event JSON (open it in Perfetto or
// chrome://tracing). Combined with -scenario it records that scenario;
// alone it records the canonical 4x2 leaf-spine parking run. The
// export is deterministic: same scenario, same seed, same bytes, at
// any partition count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/payloadpark/payloadpark/internal/harness"
	"github.com/payloadpark/payloadpark/internal/prog"
	"github.com/payloadpark/payloadpark/internal/scenario"
	"github.com/payloadpark/payloadpark/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		exp      = flag.String("exp", "", "experiment id (e.g. fig7, table1) or 'all'")
		quick    = flag.Bool("quick", false, "shorter windows and sparser sweeps")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Bool("parallel", false, "drive the raw dataplane sequentially vs one worker per pipe")
		cores    = flag.String("cores", "", "comma-separated NF-server core counts to sweep (e.g. 1,2,4,8)")
		topology = flag.String("topology", "", "leaf-spine geometry LxS (e.g. 4x2): run the fabric experiment family")
		scnFile  = flag.String("scenario", "", "run a serialized Scenario from this JSON file and print its Report")
		progFile = flag.String("program", "", "run a serialized table-program spec (prog.Spec JSON) on the canonical testbed and print its Report")
		jsonOut  = flag.String("json", "", "write the structured experiment result to this file")
		traceOut = flag.String("trace", "", "record the packet-lifecycle flight recorder and write Chrome trace-event JSON to this file (with -scenario, or alone on the canonical 4x2 leaf-spine parking run)")
		parts    = flag.String("partitions", "", "comma-separated partition counts for the scale experiment (e.g. 1,2,4,8); a single value applies to -scenario runs")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if err := startProfiles(*cpuProf, *memProf); err != nil {
		fail(err)
	}
	defer flushProfiles()

	partitions, err := parseCounts(*parts, "partition count")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
		os.Exit(2)
	}

	if *parallel {
		// Wall-clock dataplane drive: no simulation context to cancel, so
		// leave the default SIGINT behavior (kill) in place.
		runParallel(*quick, *seed)
		return
	}

	// Ctrl-C cancels mid-simulation through the Scenario API. The first
	// interrupt cancels the context; stop() then restores the default
	// handler, so a second Ctrl-C force-kills (covers the wall-clock
	// fabric dataplane drive, which has no context to poll).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	opts := harness.Options{Quick: *quick, Seed: *seed, Ctx: ctx, Partitions: partitions}

	if *scnFile != "" {
		if err := runScenarioFile(ctx, *scnFile, *jsonOut, *traceOut, *quick, *seed, partitions); err != nil {
			fail(err)
		}
		return
	}

	if *traceOut != "" {
		if err := runTraceOnly(ctx, *traceOut, *jsonOut, *quick, *seed, partitions); err != nil {
			fail(err)
		}
		return
	}

	if *progFile != "" {
		if err := runProgramFile(ctx, *progFile, *jsonOut, *quick, *seed); err != nil {
			fail(err)
		}
		return
	}

	if *topology != "" {
		if err := runTopology(opts, *topology, *jsonOut); err != nil {
			fail(err)
		}
		return
	}

	if *cores != "" {
		counts, err := parseCounts(*cores, "core count")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		res, err := harness.CollectCoreSweep(opts, counts)
		if err != nil {
			fail(fmt.Errorf("core sweep: %w", err))
		}
		if err := harness.RenderCoreSweep(res, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
		writeJSON(*jsonOut, res)
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range harness.IDs() {
			e, _ := harness.ByID(id)
			fmt.Printf("  %-8s %s\n", id, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	collected := map[string]any{}
	run := func(e harness.Experiment) error {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n", e.Paper)
		start := time.Now()
		var err error
		if *jsonOut != "" {
			// Collect once; render the same data as text.
			var res any
			if res, err = e.Collect(opts); err == nil {
				collected[e.ID] = res
				err = renderAny(e, res)
			}
		} else {
			err = e.Run(opts, os.Stdout)
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		return err
	}

	if *exp == "all" {
		for _, e := range harness.All() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "ppbench: %s: %v\n", e.ID, err)
				// Keep the experiments that did complete: a late failure
				// (or Ctrl-C) should not discard hours of results.
				writeJSON(*jsonOut, collected)
				os.Exit(1)
			}
		}
		writeJSON(*jsonOut, collected)
		return
	}
	e, ok := harness.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppbench: unknown experiment %q (valid: %s)\n",
			*exp, strings.Join(harness.IDs(), ", "))
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fail(err)
	}
	if res, ok := collected[e.ID]; ok {
		writeJSON(*jsonOut, res)
	}
}

// renderAny re-renders a collected result as text so -json runs still
// show the tables. Falls back to running the experiment if the renderer
// needs the raw collect (never the case today, but harmless).
func renderAny(e harness.Experiment, res any) error {
	return harness.Render(e, res, os.Stdout)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
	flushProfiles()
	os.Exit(1)
}

// writeJSON marshals v to path (no-op when path is empty).
func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("   wrote %s\n", path)
}

// parseCounts parses a comma-separated list of small positive integers
// (the -cores and -partitions flags). An empty string is no list.
func parseCounts(s, what string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 || n > 64 {
			return nil, fmt.Errorf("bad %s %q (want 1..64)", what, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// Profiling plumbing. fail() exits with os.Exit, which skips deferred
// calls, so the flush lives in a package-level hook that both the
// deferred path and fail() invoke (idempotently).
var (
	cpuProfFile *os.File
	memProfPath string
	profFlushed bool
)

// startProfiles starts the CPU profile and records the heap-profile
// destination; flushProfiles finalizes both.
func startProfiles(cpuPath, memPath string) error {
	memProfPath = memPath
	if cpuPath == "" {
		return nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	cpuProfFile = f
	return nil
}

func flushProfiles() {
	if profFlushed {
		return
	}
	profFlushed = true
	if cpuProfFile != nil {
		pprof.StopCPUProfile()
		cpuProfFile.Close()
	}
	if memProfPath != "" {
		f, err := os.Create(memProfPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
			return
		}
		runtime.GC() // publish up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: heap profile: %v\n", err)
		}
		f.Close()
	}
}

// runScenarioFile loads a serialized Scenario, runs it through the
// unified entrypoint, and prints the Report (headline summary plus the
// full JSON; -json additionally writes the Report to a file, -trace
// turns on the flight recorder and exports the Chrome trace). The
// -quick, -seed, and single-valued -partitions flags act as fallbacks:
// they apply only when the file's own opts leave them unset.
func runScenarioFile(ctx context.Context, path, jsonPath, tracePath string, quick bool, seed int64, partitions []int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s scenario.Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if s.Opts.Seed == 0 {
		s.Opts.Seed = seed
	}
	if quick && !s.Opts.Quick && s.Opts.WarmupNs == 0 && s.Opts.MeasureNs == 0 {
		s.Opts.Quick = true
	}
	if len(partitions) == 1 && s.Opts.Partitions == 0 {
		s.Opts.Partitions = partitions[0]
	}
	if tracePath != "" {
		s.Observe.Trace = true
	}
	fmt.Printf("== scenario %s: %s on %s\n", path, s.Name, s.Topology.Kind())
	start := time.Now()
	rep, err := scenario.Run(ctx, s)
	if err != nil {
		return err
	}
	if err := writeTrace(tracePath, rep); err != nil {
		return err
	}
	fmt.Printf("   send=%.3f Gbps goodput=%.3f Gbps lat(avg/max)=%.1f/%.1f us delivered=%d drop=%.4f%% healthy=%t premature=%d\n",
		rep.SendGbps, rep.GoodputGbps, rep.AvgLatencyUs, rep.MaxLatencyUs,
		rep.Delivered, 100*rep.UnintendedDropRate, rep.Healthy, rep.Premature)
	if rep.Control != nil {
		fmt.Printf("   control: %d ticks, %d reroutes, %d rebalances, %d expiry changes, %d demotions, %d restorations\n",
			rep.Control.Ticks, rep.Control.Reroutes, rep.Control.Rebalances,
			rep.Control.ExpiryChanges, rep.Control.Demotions, rep.Control.Restorations)
		for _, d := range rep.Control.Decisions {
			fmt.Printf("     %8.3f ms  %-9s %-10s %s\n", float64(d.AtNs)/1e6, d.Kind, d.Target, d.Detail)
		}
	}
	full, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", full)
	fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
	writeJSON(jsonPath, rep)
	return nil
}

// runProgramFile loads a serialized table-program spec (the declarative
// internal/prog JSON form), installs it as a custom policy on the
// canonical testbed with a MAC-swap NF, and prints the Report including
// the program's counters — a new policy runs from JSON with no Go code.
func runProgramFile(ctx context.Context, path, jsonPath string, quick bool, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec prog.Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// Lint before running: a dead table or unbound parameter in a
	// hand-written spec still installs, so warn where the author looks.
	for _, f := range spec.Lint() {
		fmt.Printf("   lint: %s\n", f)
	}
	s := scenario.Scenario{
		Name:     spec.Name,
		Topology: scenario.Testbed{},
		Program:  scenario.Program{Kind: "custom", Spec: &spec},
		Traffic:  scenario.Traffic{SendBps: 4e9, FixedSize: 512},
		Opts:     scenario.RunOptions{Seed: seed, Quick: quick},
	}
	fmt.Printf("== program %s: %q on the canonical testbed\n", path, spec.Name)
	start := time.Now()
	rep, err := scenario.Run(ctx, s)
	if err != nil {
		return err
	}
	fmt.Printf("   send=%.3f Gbps goodput=%.3f Gbps lat(avg/max)=%.1f/%.1f us delivered=%d healthy=%t\n",
		rep.SendGbps, rep.GoodputGbps, rep.AvgLatencyUs, rep.MaxLatencyUs, rep.Delivered, rep.Healthy)
	for _, pc := range rep.Programs {
		fmt.Printf("   program %s: occupancy=%d", pc.Program, pc.Occupancy)
		for _, k := range counterKeys(pc.Counters) {
			fmt.Printf(" %s=%d", k, pc.Counters[k])
		}
		fmt.Println()
	}
	fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
	writeJSON(jsonPath, rep)
	return nil
}

// counterKeys returns a program's counter names in stable order.
func counterKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runTopology runs the fabric experiment family and optionally exports
// the results as a BENCH artifact.
func runTopology(opts harness.Options, topo, jsonPath string) error {
	start := time.Now()
	fmt.Printf("== fabric: leaf-spine %s experiment family\n", topo)
	suite, err := harness.CollectFabricSuite(opts, topo)
	if err != nil {
		return err
	}
	if err := harness.RenderFabricSuite(suite, os.Stdout); err != nil {
		return err
	}
	fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
	writeJSON(jsonPath, suite)
	return nil
}

// writeTrace exports a report's flight recording as Chrome trace-event
// JSON (no-op when path is empty).
func writeTrace(path string, rep *scenario.Report) error {
	if path == "" {
		return nil
	}
	if rep.Trace == nil {
		return fmt.Errorf("-trace: the run produced no flight recording")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Trace.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("   wrote %s (%d events, %d dropped)\n", path, rep.Trace.Total(), rep.Trace.Dropped())
	return nil
}

// runTraceOnly records the canonical 4x2 leaf-spine parking run — the
// topology where the full packet lifecycle (inject, split, transit,
// merge, sink) plus an adaptive controller all appear — and exports the
// flight recording.
func runTraceOnly(ctx context.Context, tracePath, jsonPath string, quick bool, seed int64, partitions []int) error {
	s := scenario.Scenario{
		Name:     "trace",
		Topology: scenario.LeafSpine{Leaves: 4, Spines: 2},
		Parking:  scenario.Parking{Mode: sim.ParkEdge},
		Traffic:  scenario.Traffic{SendBps: 6e9},
		Control:  scenario.Control{Adaptive: true},
		Observe:  scenario.Observe{Trace: true, Metrics: true},
		Opts:     scenario.RunOptions{Seed: seed, Quick: quick},
	}
	if len(partitions) == 1 {
		s.Opts.Partitions = partitions[0]
	}
	fmt.Printf("== trace: canonical 4x2 leaf-spine parking run\n")
	start := time.Now()
	rep, err := scenario.Run(ctx, s)
	if err != nil {
		return err
	}
	fmt.Printf("   goodput=%.3f Gbps delivered=%d healthy=%t\n", rep.GoodputGbps, rep.Delivered, rep.Healthy)
	if err := writeTrace(tracePath, rep); err != nil {
		return err
	}
	fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
	writeJSON(jsonPath, rep)
	return nil
}

// runParallel compares the sequential and multi-pipe dataplane drivers on
// identical traffic.
func runParallel(quick bool, seed int64) {
	cfg := sim.DataplaneConfig{Seed: seed}
	if quick {
		cfg.Packets = 256
		cfg.Rounds = 16
	}
	fmt.Println("== dataplane: 4-pipe split+merge round trips, batched injection")
	cfg.Parallel = false
	seqRes := sim.RunDataplane(cfg)
	fmt.Printf("   sequential: %s\n", seqRes)
	cfg.Parallel = true
	parRes := sim.RunDataplane(cfg)
	fmt.Printf("   parallel:   %s\n", parRes)
	if parRes.Mpps > 0 && seqRes.Mpps > 0 {
		fmt.Printf("   speedup: %.2fx across %d pipe workers\n", parRes.Mpps/seqRes.Mpps, parRes.Workers)
	}
}
