// Command ppescape cross-checks the //pp:zeroalloc contract against the
// compiler's escape analysis. The ppvet zeroalloc analyzer rejects
// *syntactic* allocation sources (make, new, closures, boxing) inside
// marked functions, but it cannot see what the optimizer decides; this
// tool runs `go build -gcflags=-m` over the packages containing marks
// and reports every "escapes to heap" / "moved to heap" diagnostic that
// lands inside a marked function's body.
//
// Findings are compared against the committed allowlist
// (api/escape_allowlist.txt, one normalized finding per line): a finding
// missing from the allowlist — a new heap allocation on a hot path — or
// a stale allowlist entry fails the run, so CI catches both regressions
// and silent fixes. -update rewrites the allowlist from the current
// build.
//
// Findings are keyed by file and function, not line number, so pure
// line shifts do not churn the allowlist.
//
// Usage (from the module root):
//
//	ppescape [-update]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const allowlistPath = "api/escape_allowlist.txt"

const mark = "//pp:zeroalloc"

// markedFunc is one //pp:zeroalloc function's source extent.
type markedFunc struct {
	file       string // module-relative path
	name       string // receiver-qualified display name
	start, end int    // line range, inclusive
}

func main() {
	update := flag.Bool("update", false, "rewrite "+allowlistPath+" from the current build")
	flag.Parse()
	if err := run(*update); err != nil {
		fmt.Fprintf(os.Stderr, "ppescape: %v\n", err)
		os.Exit(1)
	}
}

func run(update bool) error {
	if _, err := os.Stat("go.mod"); err != nil {
		return fmt.Errorf("run from the module root (go.mod not found)")
	}
	marked, pkgs, err := collectMarked()
	if err != nil {
		return err
	}
	if len(marked) == 0 {
		return fmt.Errorf("no %s marks found", mark)
	}
	findings, err := escapeFindings(marked, pkgs)
	if err != nil {
		return err
	}
	if update {
		return writeAllowlist(findings)
	}
	want, err := readAllowlist()
	if err != nil {
		return err
	}
	missing, stale := diff(findings, want)
	for _, f := range missing {
		fmt.Printf("NEW ESCAPE   %s\n", f)
	}
	for _, f := range stale {
		fmt.Printf("STALE ENTRY  %s\n", f)
	}
	if len(missing)+len(stale) > 0 {
		return fmt.Errorf("%d new escape(s), %d stale allowlist entr(ies); run `go run ./cmd/ppescape -update` and review the diff", len(missing), len(stale))
	}
	fmt.Printf("ppescape: %d marked functions across %d packages, %d allowlisted escapes, no drift\n",
		len(marked), len(pkgs), len(findings))
	return nil
}

// collectMarked parses every non-test .go file under internal/ and cmd/
// (skipping testdata fixtures) and returns the marked functions plus the
// package patterns to rebuild.
func collectMarked() ([]markedFunc, []string, error) {
	var marked []markedFunc
	pkgSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Doc == nil || fn.Body == nil {
					continue
				}
				for _, c := range fn.Doc.List {
					if c.Text == mark || strings.HasPrefix(c.Text, mark+" ") {
						marked = append(marked, markedFunc{
							file:  path,
							name:  funcName(fn),
							start: fset.Position(fn.Pos()).Line,
							end:   fset.Position(fn.End()).Line,
						})
						pkgSet["./"+filepath.ToSlash(filepath.Dir(path))] = true
						break
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	return marked, pkgs, nil
}

// funcName renders a receiver-qualified display name: Emit becomes
// (*Recorder).Emit, plain functions keep their identifier.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var recv strings.Builder
	switch t := fn.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			recv.WriteString("*" + id.Name)
		}
	case *ast.Ident:
		recv.WriteString(t.Name)
	}
	if recv.Len() == 0 {
		return fn.Name.Name
	}
	return "(" + recv.String() + ")." + fn.Name.Name
}

// escapeLine matches one compiler diagnostic: file:line:col: message.
var escapeLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):\d+: (.*)$`)

// escapeFindings rebuilds pkgs with -gcflags=-m under a scratch GOCACHE
// (a warm cache suppresses the diagnostics entirely) and returns the
// normalized heap-allocation findings inside marked functions.
func escapeFindings(marked []markedFunc, pkgs []string) ([]string, error) {
	scratch, err := os.MkdirTemp("", "ppescape-gocache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Env = append(os.Environ(), "GOCACHE="+scratch, "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	set := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		for _, mf := range marked {
			if mf.file == m[1] && lineNo >= mf.start && lineNo <= mf.end {
				set[fmt.Sprintf("%s:%s: %s", mf.file, mf.name, msg)] = true
				break
			}
		}
	}
	findings := make([]string, 0, len(set))
	for f := range set {
		findings = append(findings, f)
	}
	sort.Strings(findings)
	return findings, nil
}

func readAllowlist() ([]string, error) {
	data, err := os.ReadFile(allowlistPath)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out, nil
}

func writeAllowlist(findings []string) error {
	var b strings.Builder
	b.WriteString("# Heap escapes the compiler reports inside //pp:zeroalloc functions.\n")
	b.WriteString("# Regenerate with: go run ./cmd/ppescape -update\n")
	b.WriteString("# An empty list is the goal; every entry here is a known, justified\n")
	b.WriteString("# exception (see the function's //pp:alloc-ok waiver for the why).\n")
	for _, f := range findings {
		b.WriteString(f)
		b.WriteString("\n")
	}
	if err := os.WriteFile(allowlistPath, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("ppescape: wrote %s (%d findings)\n", allowlistPath, len(findings))
	return nil
}

// diff returns findings absent from the allowlist and allowlist entries
// no longer observed (both sorted).
func diff(got, want []string) (missing, stale []string) {
	gotSet := map[string]bool{}
	for _, f := range got {
		gotSet[f] = true
	}
	wantSet := map[string]bool{}
	for _, f := range want {
		wantSet[f] = true
	}
	for _, f := range got {
		if !wantSet[f] {
			missing = append(missing, f)
		}
	}
	for _, f := range want {
		if !gotSet[f] {
			stale = append(stale, f)
		}
	}
	return missing, stale
}
