// Command ppvet runs the repo's invariant lint suite: static analyzers
// that enforce at lint time what the test suite otherwise catches at run
// time — determinism of the pinned packages, zero-alloc hot paths, the
// snake_case JSON report surface, and table-program liveness.
//
// usage:
//
//	ppvet [-json] [packages]
//
// Packages default to ./... resolved from the current directory. When
// the analyzed set includes internal/prog, the table-program linter also
// sweeps the built-in specs and every committed spec JSON file under
// examples/. Exit status is 1 when any finding survives suppression.
//
// Suppression: a //pp:<directive> comment with a reason, on or
// immediately above the flagged line, silences exactly one diagnostic
// (determinism: nondeterministic-ok; zeroalloc: alloc-ok; reportjson:
// json-ok). Unused or unknown annotations are findings themselves. Spec
// findings are waived in the spec's lint_allow list instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/payloadpark/payloadpark/internal/analysis"
)

var analyzers = []*analysis.Analyzer{
	analysis.Determinism,
	analysis.Zeroalloc,
	analysis.ReportJSON,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON object instead of text")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppvet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := struct {
			Findings []analysis.Finding `json:"findings"`
			Count    int                `json:"count"`
		}{Findings: findings, Count: len(findings)}
		if out.Findings == nil {
			out.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "ppvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(relativize(f))
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ppvet: %d findings\n", len(findings))
		}
		os.Exit(1)
	}
}

func run(patterns []string) ([]analysis.Finding, error) {
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		return nil, err
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return nil, err
	}

	// Table-program lint rides along whenever the prog package is in the
	// analyzed set: the built-in specs, then every committed spec file.
	for _, pkg := range pkgs {
		if !strings.HasSuffix(pkg.Path, "/internal/prog") {
			continue
		}
		findings = append(findings, analysis.LintBuiltinSpecs()...)
		root, err := analysis.ModuleDir(".")
		if err != nil {
			return nil, err
		}
		if dir := filepath.Join(root, "examples"); dirExists(dir) {
			specs, err := analysis.FindSpecFiles(dir)
			if err != nil {
				return nil, err
			}
			for _, path := range specs {
				findings = append(findings, analysis.LintSpecFile(path)...)
			}
		}
		break
	}
	return findings, nil
}

func dirExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// relativize renders a finding with a cwd-relative path when that is
// shorter, matching how go vet prints.
func relativize(f analysis.Finding) string {
	if cwd, err := os.Getwd(); err == nil && f.File != "" {
		if rel, err := filepath.Rel(cwd, f.File); err == nil && !strings.HasPrefix(rel, "..") {
			f.File = rel
		}
	}
	return f.String()
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ppvet [-json] [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintf(os.Stderr, "  %-12s %s\n", analysis.ProglintName, firstLine(analysis.ProglintDoc))
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
