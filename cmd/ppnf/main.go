// Command ppnf runs a PayloadPark-unaware NF server as a userspace daemon
// over UDP sockets. It hosts one of the paper's chains and returns
// processed frames to the switch; the PayloadPark header riding in the
// payload region passes through untouched.
//
// Like ppswitchd, it receives in recvmmsg-style bursts (-burst) and
// returns the processed burst through the reused-buffer batched sender
// (wire.BatchSender, one sendmmsg per burst on Linux).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/obs"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/wire"
)

func buildChain(spec string, dropFrac float64) (*nf.Chain, error) {
	var nfs []nf.NF
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "macswap":
			nfs = append(nfs, nf.MACSwap{})
		case "fw", "firewall":
			nfs = append(nfs, nf.NewFirewall(nf.BlacklistFraction(dropFrac)))
		case "nat":
			nfs = append(nfs, nf.NewNAT(packet.IPv4Addr{198, 51, 100, 1}))
		case "lb":
			lb, err := nf.NewLoadBalancer(map[string]packet.IPv4Addr{
				"backend-0": {10, 2, 0, 10}, "backend-1": {10, 2, 0, 11},
				"backend-2": {10, 2, 0, 12}, "backend-3": {10, 2, 0, 13},
			})
			if err != nil {
				return nil, err
			}
			nfs = append(nfs, lb)
		default:
			return nil, fmt.Errorf("unknown NF %q (want macswap|fw|nat|lb)", part)
		}
	}
	return nf.NewChain(nfs...), nil
}

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7002", "UDP listen address")
		swAddr   = flag.String("switch", "127.0.0.1:7000", "switch address")
		chainStr = flag.String("chain", "macswap", "comma-separated chain: macswap,fw,nat,lb")
		dropFrac = flag.Float64("fw-drop", 0, "firewall blacklist fraction (0..1)")
		explicit = flag.Bool("explicit-drop", false, "send Explicit Drop notifications (§6.2.4)")
		burst    = flag.Int("burst", wire.DefaultBurst, "receive burst size (recvmmsg-style drain)")
		metrics  = flag.String("metrics", "", "serve Prometheus text exposition at http://ADDR/metrics (e.g. 127.0.0.1:9001)")
	)
	flag.Parse()

	chain, err := buildChain(*chainStr, *dropFrac)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppnf: %v\n", err)
		os.Exit(2)
	}
	d, err := wire.NewNFDaemon(wire.NFConfig{
		Listen: *listen, SwitchAddr: *swAddr,
		Handle: func(p *packet.Packet) bool {
			v, _ := chain.Process(p)
			return v == nf.Forward
		},
		ExplicitDrop: *explicit,
		Burst:        *burst,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppnf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ppnf: %s on %s -> switch %s (explicit-drop=%t)\n", chain.Name(), d.Addr(), *swAddr, *explicit)

	if *metrics != "" {
		if err := serveMetrics(*metrics, d.RegisterMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "ppnf: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ppnf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ppnf: rx=%d tx=%d dropped=%d notified=%d\n",
		d.Rx.Load(), d.Tx.Load(), d.Dropped.Load(), d.Notified.Load())
}

// serveMetrics binds addr, registers the daemon's atomics, and serves
// GET /metrics in the background; a bad address fails at startup.
func serveMetrics(addr string, register func(*obs.Registry)) error {
	reg := obs.NewRegistry()
	register(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	fmt.Printf("ppnf: metrics at http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "ppnf: metrics server: %v\n", err)
		}
	}()
	return nil
}
