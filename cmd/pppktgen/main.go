// Command pppktgen is the wire-mode traffic generator: it sends UDP
// packets (fixed-size or the paper's datacenter mix) through the switch
// and reports how many came back intact.
//
// -blast replaces the paced sender with the open-loop batched path:
// frames are serialized back-to-back into one reused buffer and flushed
// in sendmmsg-style batches (wire.BatchSender, the same send path the
// live fabric's per-pipe workers use), reporting achieved pps and Gbps
// instead of pacing to -pps.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
	"github.com/payloadpark/payloadpark/internal/wire"
)

var (
	genMAC = packet.MAC{0x02, 0, 0, 0, 0, 0x01}
	nfMAC  = packet.MAC{0x02, 0, 0, 0, 0, 0x02}
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7001", "UDP listen address (frames return here)")
		swAddr = flag.String("switch", "127.0.0.1:7000", "switch address")
		count  = flag.Int("count", 10000, "packets to send")
		size   = flag.Int("size", 0, "fixed packet size in bytes (0 = datacenter mix)")
		pps    = flag.Int("pps", 20000, "send rate in packets/second")
		seed   = flag.Int64("seed", 1, "random seed")
		blast  = flag.Bool("blast", false, "open-loop batched sends (ignore -pps), report wire rate")
	)
	flag.Parse()

	var dist trafficgen.SizeDist = trafficgen.Datacenter{}
	if *size > 0 {
		dist = trafficgen.Fixed(*size)
	}
	gen := trafficgen.New(trafficgen.Config{
		Sizes: dist, Flows: 1024,
		SrcMAC: genMAC, DstMAC: nfMAC,
		DstIP: packet.IPv4Addr{10, 1, 0, 9}, DstPort: 80,
		Seed: *seed,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g, err := wire.NewGenerator(ctx, wire.GenConfig{Listen: *listen, SwitchAddr: *swAddr, Discard: *blast})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pppktgen: %v\n", err)
		os.Exit(1)
	}

	var sentBytes int
	var elapsed time.Duration
	if *blast {
		fmt.Printf("pppktgen: %s -> %s, %d packets open-loop batched (%s sizes)\n",
			g.Addr(), *swAddr, *count, dist.Name())
		bs := g.BatchSender()
		dst := g.SwitchUDPAddr()
		start := time.Now()
		for i := 0; i < *count; i++ {
			pkt := gen.Next()
			sentBytes += pkt.Len()
			bs.Commit(pkt.AppendSerialize(bs.Begin()), dst, &g.Sent)
			if bs.Pending() >= wire.DefaultBurst {
				bs.Flush()
			}
		}
		bs.Flush()
		elapsed = time.Since(start)
	} else {
		fmt.Printf("pppktgen: %s -> %s, %d packets at %d pps (%s sizes)\n",
			g.Addr(), *swAddr, *count, *pps, dist.Name())
		interval := time.Second / time.Duration(*pps)
		start := time.Now()
		for i := 0; i < *count; i++ {
			pkt := gen.Next()
			sentBytes += pkt.Len()
			if err := g.Send(pkt.Serialize()); err != nil {
				fmt.Fprintf(os.Stderr, "pppktgen: send: %v\n", err)
				os.Exit(1)
			}
			time.Sleep(interval)
		}
		elapsed = time.Since(start)
	}
	got := g.WaitReceived(uint64(*count), 5*time.Second)
	fmt.Printf("pppktgen: sent=%d (%.2f Mbit, %.1fs) received=%d loss=%.3f%%\n",
		g.Sent.Load(), float64(sentBytes)*8/1e6, elapsed.Seconds(),
		got, 100*float64(g.Sent.Load()-got)/float64(g.Sent.Load()))
	if *blast && elapsed > 0 {
		secs := elapsed.Seconds()
		fmt.Printf("pppktgen: wire rate %.0f pps, %.3f Gbps sent\n",
			float64(g.Sent.Load())/secs, float64(sentBytes)*8/secs/1e9)
	}
}
