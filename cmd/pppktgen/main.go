// Command pppktgen is the wire-mode traffic generator: it sends UDP
// packets (fixed-size or the paper's datacenter mix) through the switch
// and reports how many came back intact.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
	"github.com/payloadpark/payloadpark/internal/wire"
)

var (
	genMAC = packet.MAC{0x02, 0, 0, 0, 0, 0x01}
	nfMAC  = packet.MAC{0x02, 0, 0, 0, 0, 0x02}
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7001", "UDP listen address (frames return here)")
		swAddr = flag.String("switch", "127.0.0.1:7000", "switch address")
		count  = flag.Int("count", 10000, "packets to send")
		size   = flag.Int("size", 0, "fixed packet size in bytes (0 = datacenter mix)")
		pps    = flag.Int("pps", 20000, "send rate in packets/second")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var dist trafficgen.SizeDist = trafficgen.Datacenter{}
	if *size > 0 {
		dist = trafficgen.Fixed(*size)
	}
	gen := trafficgen.New(trafficgen.Config{
		Sizes: dist, Flows: 1024,
		SrcMAC: genMAC, DstMAC: nfMAC,
		DstIP: packet.IPv4Addr{10, 1, 0, 9}, DstPort: 80,
		Seed: *seed,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g, err := wire.NewGenerator(ctx, wire.GenConfig{Listen: *listen, SwitchAddr: *swAddr})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pppktgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pppktgen: %s -> %s, %d packets at %d pps (%s sizes)\n",
		g.Addr(), *swAddr, *count, *pps, dist.Name())

	interval := time.Second / time.Duration(*pps)
	start := time.Now()
	var sentBytes int
	for i := 0; i < *count; i++ {
		pkt := gen.Next()
		sentBytes += pkt.Len()
		if err := g.Send(pkt.Serialize()); err != nil {
			fmt.Fprintf(os.Stderr, "pppktgen: send: %v\n", err)
			os.Exit(1)
		}
		time.Sleep(interval)
	}
	elapsed := time.Since(start)
	got := g.WaitReceived(uint64(*count), 5*time.Second)
	fmt.Printf("pppktgen: sent=%d (%.2f Mbit, %.1fs) received=%d loss=%.3f%%\n",
		g.Sent.Load(), float64(sentBytes)*8/1e6, elapsed.Seconds(),
		got, 100*float64(g.Sent.Load()-got)/float64(g.Sent.Load()))
}
