// Command ppcap materializes and inspects workload captures: it writes
// the paper's Fig. 6 enterprise-datacenter packet mix as a standard pcap
// file, prints size statistics for any Ethernet capture, and replays a
// capture through the batched dataplane at scale.
//
//	ppcap -gen 100000 -out workload.pcap     # write the Fig. 6 workload
//	ppcap -stats workload.pcap               # packet-size CDF of a capture
//	ppcap -drive workload.pcap [-parallel]   # replay through InjectBatch
//
// -drive pre-builds per-pipe batches from the capture (replayed packets
// are pooled and recycled, so steady state allocates nothing) and
// round-trips them through the four-pipe PayloadPark dataplane —
// sequential batched injection, or one worker per pipe with -parallel.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/pcap"
	"github.com/payloadpark/payloadpark/internal/sim"
	"github.com/payloadpark/payloadpark/internal/stats"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

func main() {
	var (
		gen      = flag.Int("gen", 0, "generate N datacenter-mix packets")
		out      = flag.String("out", "workload.pcap", "output file for -gen")
		size     = flag.Int("size", 0, "fixed packet size for -gen (0 = datacenter mix)")
		seed     = flag.Int64("seed", 1, "random seed for -gen")
		stat     = flag.String("stats", "", "print size statistics of a capture file")
		driveCap = flag.String("drive", "", "replay a capture through the batched dataplane")
		rounds   = flag.Int("rounds", 32, "split+merge round trips per replayed packet for -drive")
		parallel = flag.Bool("parallel", false, "with -drive: one worker per pipe")
	)
	flag.Parse()

	switch {
	case *gen > 0:
		if err := generate(*gen, *size, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "ppcap: %v\n", err)
			os.Exit(1)
		}
	case *stat != "":
		if err := statistics(*stat); err != nil {
			fmt.Fprintf(os.Stderr, "ppcap: %v\n", err)
			os.Exit(1)
		}
	case *driveCap != "":
		if err := drive(*driveCap, *rounds, *parallel, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ppcap: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// drive replays a capture through the batched (optionally per-pipe
// parallel) dataplane and reports throughput.
func drive(path string, rounds int, parallel bool, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := pcap.ReadAll(f)
	if err != nil {
		return err
	}
	cfg := sim.DataplaneConfig{
		Pipes: core.NumPipes, Rounds: rounds, Parallel: parallel, Seed: seed,
		Source: func(pipe int, gc trafficgen.Config) trafficgen.Source {
			rp, err := trafficgen.NewReplay(recs, gc.SrcMAC, gc.DstMAC)
			if err != nil {
				panic(fmt.Sprintf("ppcap: %v", err))
			}
			// Offset each pipe's start so the pipes do not replay in
			// lockstep.
			for i := 0; i < pipe*rp.Len()/4; i++ {
				rp.Recycle(rp.Next())
			}
			return rp
		},
	}
	res := sim.RunDataplane(cfg)
	fmt.Printf("ppcap: replayed %d packets (%d rounds, %d pipes): %s\n",
		len(recs), rounds, cfg.Pipes, res)
	return nil
}

func generate(n, size int, seed int64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var dist trafficgen.SizeDist = trafficgen.Datacenter{}
	if size > 0 {
		dist = trafficgen.Fixed(size)
	}
	cfg := trafficgen.Config{
		Sizes: dist, Flows: 1024,
		SrcMAC: packet.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC: packet.MAC{0x02, 0, 0, 0, 0, 0x02},
		DstIP:  packet.IPv4Addr{10, 1, 0, 9}, DstPort: 80,
		Seed: seed,
	}
	if err := trafficgen.WriteWorkload(pcap.NewWriter(f), cfg, n); err != nil {
		return err
	}
	fmt.Printf("ppcap: wrote %d packets (%s sizes) to %s\n", n, dist.Name(), path)
	return nil
}

func statistics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := pcap.ReadAll(f)
	if err != nil {
		return err
	}
	cdf := stats.NewCDF()
	var sum stats.Summary
	for _, r := range recs {
		cdf.Observe(float64(len(r.Data)))
		sum.Observe(float64(len(r.Data)))
	}
	fmt.Printf("packets=%d mean=%.1fB min=%.0f max=%.0f\n",
		sum.Count(), sum.Mean(), sum.Min(), sum.Max())
	fmt.Println("size CDF:")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("  p%02.0f  %5.0f B\n", q*100, cdf.Quantile(q))
	}
	fmt.Printf("  P(size <= 201) = %.3f (sub-160B payloads)\n", cdf.At(201))
	return nil
}
