// Command ppswitchd runs the PayloadPark switch as a userspace daemon
// over UDP sockets: raw Ethernet frames ride one-per-datagram between the
// generator, this switch, and the NF server.
//
// Frames are read in recvmmsg-style bursts (-burst) and the whole burst
// is driven through the switch's zero-alloc batch path; emissions are
// serialized back-to-back into one reused buffer and flushed with a
// single sendmmsg on Linux (wire.BatchSender) — the same receive and
// send path the live fabric's per-pipe workers use.
//
// Example (three terminals):
//
//	ppswitchd -listen 127.0.0.1:7000 -gen 127.0.0.1:7001 -nf 127.0.0.1:7002 -slots 4096
//	ppnf      -listen 127.0.0.1:7002 -switch 127.0.0.1:7000
//	pppktgen  -listen 127.0.0.1:7001 -switch 127.0.0.1:7000 -count 10000
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/obs"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/wire"
)

// Fixed demo topology MACs, shared by the three wire commands.
var (
	genMAC = packet.MAC{0x02, 0, 0, 0, 0, 0x01}
	nfMAC  = packet.MAC{0x02, 0, 0, 0, 0, 0x02}
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7000", "UDP listen address")
		genAddr = flag.String("gen", "127.0.0.1:7001", "traffic generator address (cabled to port 0)")
		nfAddr  = flag.String("nf", "127.0.0.1:7002", "NF server address (cabled to port 1)")
		slots   = flag.Int("slots", 4096, "lookup table capacity (0 = baseline L2 switch)")
		expiry  = flag.Uint("expiry", 1, "expiry threshold MAX_EXP")
		recirc  = flag.Bool("recirculate", false, "park 384 bytes via recirculation")
		burst   = flag.Int("burst", wire.DefaultBurst, "receive burst size (recvmmsg-style drain)")
		metrics = flag.String("metrics", "", "serve Prometheus text exposition at http://ADDR/metrics (e.g. 127.0.0.1:9000)")
	)
	flag.Parse()

	cfg := wire.SwitchConfig{
		Listen: *listen,
		Ports: map[rmt.PortID]string{
			0: *genAddr,
			1: *nfAddr,
		},
		L2: map[packet.MAC]rmt.PortID{
			nfMAC:  1,
			genMAC: 0,
		},
		RecircPipe: -1,
		Burst:      *burst,
	}
	if *slots > 0 {
		cfg.PP = &core.Config{
			Slots: *slots, MaxExpiry: uint32(*expiry),
			SplitPort: 0, MergePort: 1, Recirculate: *recirc,
		}
		if *recirc {
			cfg.RecircPipe = 1
		}
	}
	d, err := wire.NewSwitchDaemon(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppswitchd: %v\n", err)
		os.Exit(1)
	}
	mode := "baseline (L2 only)"
	if cfg.PP != nil {
		mode = fmt.Sprintf("payloadpark slots=%d expiry=%d recirculate=%t", *slots, *expiry, *recirc)
	}
	fmt.Printf("ppswitchd: listening on %s, gen=%s nf=%s, %s\n", d.Addr(), *genAddr, *nfAddr, mode)

	if *metrics != "" {
		if err := serveMetrics(*metrics, d.RegisterMetrics, "ppswitchd"); err != nil {
			fmt.Fprintf(os.Stderr, "ppswitchd: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ppswitchd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ppswitchd: rx=%d tx=%d errors=%d\n", d.Rx.Load(), d.Tx.Load(), d.Errors.Load())
	fmt.Printf("ppswitchd: %s\n", d.Counters().String())
}

// serveMetrics binds addr, registers the daemon's atomics via register,
// and serves GET /metrics in the background. Binding synchronously means
// a bad -metrics address fails at startup, not silently mid-run.
func serveMetrics(addr string, register func(*obs.Registry), name string) error {
	reg := obs.NewRegistry()
	register(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	fmt.Printf("%s: metrics at http://%s/metrics\n", name, ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "%s: metrics server: %v\n", name, err)
		}
	}()
	return nil
}
