// Package payloadpark is a faithful software reproduction of
// "Parking Packet Payload with P4" (Goswami et al., CoNEXT 2020).
//
// PayloadPark improves the goodput of shallow network functions (NFs) —
// firewalls, NATs, L4 load balancers — by parking packet payloads in the
// stateful memory of a programmable switch: only headers travel to the NF
// server, and the switch reassembles the packet when the headers return.
//
// This package is the public facade over the internal reproduction:
//
//   - Run is the simulation entrypoint: one Scenario descriptor — a
//     Topology (testbed, multi-server, leaf-spine, live, or custom), a
//     Parking policy, a Traffic spec, a ServerModel, and RunOptions —
//     executed into one structured, JSON-serializable Report. RunSweep
//     expands a Sweep (a base Scenario plus parameter Axes) into a grid
//     and runs the points in parallel, honoring context cancellation
//     mid-simulation.
//   - LiveTopology swaps the simulator for real UDP loopback sockets:
//     the same compiled pipeline behind per-pipe worker sockets, with
//     deterministic lockstep replays held to exact counter parity
//     against an in-process reference, or open-loop wire-rate runs.
//   - Deployment builds the canonical testbed (traffic generator, RMT
//     switch running the PayloadPark P4 program, NF server) and lets
//     applications push packets through it in-process.
//   - Experiments exposes the per-figure/table reproduction harness.
//
// The legacy Simulate, SimulateMultiServer and SimulateFabric
// entrypoints survive as thin deprecated wrappers over the same
// internals; parity tests pin their outputs byte-identical to Run's.
//
// The dataplane is byte-accurate: Split really removes the parked bytes
// from the packet and stores them in register cells that obey the RMT
// one-stateful-access-per-table restriction; Merge really reassembles the
// original bytes. Running the same traffic with and without PayloadPark
// yields byte-identical output (§6.2.6 of the paper).
package payloadpark

import (
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/ctrl"
	"github.com/payloadpark/payloadpark/internal/harness"
	"github.com/payloadpark/payloadpark/internal/live"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/obs"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/prog"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/scenario"
	"github.com/payloadpark/payloadpark/internal/sim"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// Re-exported building blocks. The aliases keep the public API to one
// import while the implementation stays modular.
type (
	// Packet is a parsed network packet (Ethernet/IPv4/UDP|TCP, optional
	// PayloadPark header).
	Packet = packet.Packet
	// FiveTuple is the flow key shallow NFs examine.
	FiveTuple = packet.FiveTuple
	// MAC is an Ethernet address.
	MAC = packet.MAC
	// IPv4Addr is an IPv4 address.
	IPv4Addr = packet.IPv4Addr
	// NF is a shallow network function.
	NF = nf.NF
	// Chain is an ordered NF chain.
	Chain = nf.Chain
	// FirewallRule blacklists an IPv4 source prefix.
	FirewallRule = nf.FirewallRule
	// SlimDPINF classifies packets by a payload-prefix scan (§7).
	SlimDPINF = nf.SlimDPI
	// Config parameterizes the PayloadPark program (lookup table size,
	// expiry threshold, recirculation).
	Config = core.Config
	// Counters are the switch program's monitoring counters.
	Counters = core.Counters
	// SimResult is a simulated deployment's measurements.
	SimResult = sim.Result
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.TestbedConfig
	// ServerModel calibrates the simulated NF server.
	ServerModel = sim.ServerModel
	// CoreStat is one NF-server core's drop/occupancy record.
	CoreStat = sim.CoreStat
	// SizeDist draws packet sizes for generated traffic.
	SizeDist = trafficgen.SizeDist
	// Experiment is one paper table/figure reproduction.
	Experiment = harness.Experiment
)

// The unified Scenario API: one descriptor, one entrypoint, every
// topology. See Run and RunSweep.
type (
	// Scenario is one point of the evaluation grid: Topology + Parking +
	// Traffic + ServerModel + RunOptions.
	Scenario = scenario.Scenario
	// Topology is the deployment-shape sum type; TestbedTopology,
	// MultiServerTopology, LeafSpineTopology and CustomTopology are its
	// members.
	Topology = scenario.Topology
	// TestbedTopology is the paper's canonical single-switch testbed
	// (Fig. 5).
	TestbedTopology = scenario.Testbed
	// MultiServerTopology is the §6.2.3 shared-switch deployment
	// (up to 8 NF servers).
	MultiServerTopology = scenario.MultiServer
	// LeafSpineTopology is the multi-switch fabric.
	LeafSpineTopology = scenario.LeafSpine
	// LiveTopology runs the scenario on real UDP loopback sockets instead
	// of the discrete-event simulator: per-pipe worker sockets around the
	// same compiled switch pipeline, a socket NF daemon, and (with
	// Control) a controller driving the fabric over a socket-backed
	// control protocol. Lockstep runs replay deterministically and match
	// the in-process reference counter for counter; the default
	// throughput mode measures open-loop loopback wire rate.
	LiveTopology = scenario.Live
	// CustomTopology is the escape hatch: a user hook that runs the
	// composed scenario on a bespoke deployment.
	CustomTopology = scenario.Custom
	// ParkingPolicy selects where and how payloads park (the zero value
	// is the baseline).
	ParkingPolicy = scenario.Parking
	// ProgramPolicy is the declarative table-program section of a
	// Scenario: Kind "compress" runs the built-in ROHC-style
	// header-compression spec, Kind "custom" installs an arbitrary
	// serialized ProgramSpec (Testbed only). The zero value installs
	// nothing.
	ProgramPolicy = scenario.Program
	// ProgramSpec is a declarative table program — parser geometry,
	// match-action tables, and register layouts as data. Specs round-trip
	// through JSON, so new policies need no Go code; installing one
	// (ProgramPolicy Kind "custom") compiles it against the same RMT
	// stage/SRAM budgets as the built-in program.
	ProgramSpec = prog.Spec
	// ProgramInstance is a compiled, installed ProgramSpec: live counters,
	// registers, and runtime parameters.
	ProgramInstance = prog.Instance
	// ProgramCounters is one installed program's counter report in
	// Report.Programs.
	ProgramCounters = sim.ProgramCounters
	// ParkSpecParams / CompressSpecParams parameterize the built-in spec
	// builders.
	ParkSpecParams     = prog.ParkParams
	CompressSpecParams = prog.CompressParams
	// Control is the control-plane spec of a Scenario: ECMP multipath
	// routing (LeafSpine) and/or the fabric-wide adaptive parking policy,
	// both driven by a telemetry-tick controller. The zero value keeps
	// tables static.
	Control = scenario.Control
	// ControlReport is the controller's structured outcome in
	// Report.Control: tick bookkeeping, per-kind totals, and the decision
	// timeline.
	ControlReport = ctrl.Report
	// ControlDecision is one timestamped control-plane action in the
	// decision timeline.
	ControlDecision = ctrl.Decision
	// Traffic is the offered-load spec.
	Traffic = scenario.Traffic
	// Observe is the observability spec of a Scenario: Metrics snapshots
	// a registry of engine/switch/parking counters into Report.Metrics,
	// Trace records the packet-lifecycle flight recorder into
	// Report.Trace (simulated topologies only). Both default off; a dark
	// scenario pays no instrumentation cost.
	Observe = scenario.Observe
	// MetricsSnapshot is the counters/gauges/histograms section in
	// Report.Metrics.
	MetricsSnapshot = obs.Snapshot
	// FlightTrace is the recorded packet-lifecycle timeline in
	// Report.Trace; export it with WriteChrome (Perfetto /
	// chrome://tracing JSON).
	FlightTrace = obs.Trace
	// RunOptions are the execution knobs (seed, quick, window, progress).
	RunOptions = scenario.RunOptions
	// Report is the structured result of one Run, topology-independent
	// headline metrics plus the embedded per-topology detail.
	Report = scenario.Report
	// LiveResult is the socket fabric's measurement in Report.Live:
	// delivery and NF accounting, merged program counters, and (in
	// throughput mode) the loopback wire rate.
	LiveResult = live.Result
	// LiveCounterSet is the merged switch-counter section of a
	// LiveResult; lockstep runs hold it to exact equality with the
	// in-process reference replay.
	LiveCounterSet = live.CounterSet
	// Sweep is a parameter grid over a base Scenario.
	Sweep = scenario.Sweep
	// Axis is one sweep dimension; AxisPoint one value on it.
	Axis      = scenario.Axis
	AxisPoint = scenario.AxisPoint
	// SweepPoint / SweepReport are RunSweep's structured results.
	SweepPoint  = scenario.SweepPoint
	SweepReport = scenario.SweepReport
	// TrafficSource is an arbitrary packet stream (pcap replay) for
	// Traffic.Source.
	TrafficSource = trafficgen.Source
	// CDFPoint is one latency-distribution quantile in Report.LatencyCDF.
	CDFPoint = sim.CDFPoint
)

// Run executes one Scenario — any topology — and returns its structured
// Report. Cancellation is honored mid-simulation: the context's Done
// channel is polled by the event engine every few thousand events.
func Run(ctx context.Context, s Scenario) (*Report, error) { return scenario.Run(ctx, s) }

// RunSweep expands the sweep's parameter grid and runs its points in
// parallel across a worker pool. On cancellation it returns the partial
// report alongside ctx.Err(); completed points are retained.
func RunSweep(ctx context.Context, sw Sweep) (*SweepReport, error) { return scenario.RunSweep(ctx, sw) }

// Axis constructors for common sweep dimensions; AxisOf builds an axis
// from arbitrary setters.
var (
	AxisOf         = scenario.AxisOf
	SendGbpsAxis   = scenario.SendGbpsAxis
	ParkingAxis    = scenario.ParkingAxis
	ControlAxis    = scenario.ControlAxis
	CoresAxis      = scenario.CoresAxis
	PacketSizeAxis = scenario.PacketSizeAxis
	SlotsAxis      = scenario.SlotsAxis
	PartitionsAxis = scenario.PartitionsAxis
	SeedAxis       = scenario.SeedAxis
)

// CancelFunc adapts a context to the simulation configs' Cancel hook —
// CustomTopology implementations pass it to their sim config so
// mid-simulation cancellation works for them too.
func CancelFunc(ctx context.Context) func() bool { return scenario.CancelFunc(ctx) }

// Built-in table-program spec builders: the paper's parking program, the
// ROHC-style header-compression program, and both combined on one pipe —
// each returned as plain data that serializes to JSON (the format
// `ppbench -program` runs).
var (
	PayloadParkProgramSpec    = prog.PayloadParkSpec
	HeaderCompressProgramSpec = prog.HeaderCompressSpec
	ParkCompressProgramSpec   = prog.ParkCompressSpec
)

// Parked-payload geometry (fixed by the hardware model, §5 and §6.2.5).
const (
	// ParkBytes is the payload bytes parked per packet without
	// recirculation.
	ParkBytes = core.BaseParkBytes
	// ParkBytesRecirculated is the payload bytes parked with
	// recirculation.
	ParkBytesRecirculated = core.RecircParkBytes
	// HeaderUnitLen is the Ethernet+IPv4+UDP header size the paper uses
	// as the unit of goodput.
	HeaderUnitLen = packet.HeaderUnitLen
)

// NF constructors, re-exported.
var (
	// NewFirewall builds the linear-probe ACL firewall.
	NewFirewall = nf.NewFirewall
	// BlacklistFraction builds a one-rule blacklist dropping roughly the
	// given fraction of uniform 10.0.0.0/8 traffic (Fig. 12's knob).
	BlacklistFraction = nf.BlacklistFraction
	// NewNAT builds the MazuNAT-style source NAT.
	NewNAT = nf.NewNAT
	// NewLoadBalancer builds the Maglev-based L4 load balancer.
	NewLoadBalancer = nf.NewLoadBalancer
	// NewSynthetic builds a MAC-swapping NF with a configurable CPU cost.
	NewSynthetic = nf.NewSynthetic
	// NewSlimDPI builds a payload-prefix classifier; pair it with
	// DeploymentConfig.BoundaryOffset >= its prefix length.
	NewSlimDPI = nf.NewSlimDPI
	// NewRateLimiter builds a per-flow token-bucket policer.
	NewRateLimiter = nf.NewRateLimiter
	// NewChain composes NFs into a chain.
	NewChain = nf.NewChain
)

// Fixed is a constant packet-size distribution.
func Fixed(bytes int) SizeDist { return trafficgen.Fixed(bytes) }

// Datacenter is the paper's bimodal enterprise-datacenter packet-size
// distribution (Fig. 6: mean 882 B, 30% of payloads under 160 B).
func Datacenter() SizeDist { return trafficgen.Datacenter{} }

// Deployment is an in-process PayloadPark testbed: a switch with the
// program installed between a traffic source and an NF chain. It is the
// quickstart surface — push packets, observe split/merge behaviour, read
// counters. For timed measurements use Simulate.
type Deployment struct {
	sw     *core.Switch
	prog   *core.Program
	server *nf.Server
	base   bool
}

// DeploymentConfig configures New.
type DeploymentConfig struct {
	// Slots is the lookup-table capacity (default 4096).
	Slots int
	// MaxExpiry is the eviction threshold (default 1).
	MaxExpiry uint32
	// Recirculate enables 384-byte parking via a second pipe.
	Recirculate bool
	// BoundaryOffset moves the decoupling boundary (§7): the first
	// BoundaryOffset payload bytes stay visible to the NF chain in front
	// of the PayloadPark header (Slim-DPI support).
	BoundaryOffset int
	// Chain is the NF chain the embedded server runs (default: MAC swap).
	Chain *Chain
	// ExplicitDrop enables the §6.2.4 framework modification.
	ExplicitDrop bool
	// Baseline disables the PayloadPark program (pure L2 switch), for
	// equivalence comparisons.
	Baseline bool
}

// Topology MACs of the embedded testbed.
var (
	// GeneratorMAC is the traffic source address.
	GeneratorMAC = sim.MACGen
	// ServerMAC is the NF server address (send packets here).
	ServerMAC = sim.MACNF
	// SinkMAC is the receive side of the generator.
	SinkMAC = sim.MACSink
)

// New builds a deployment.
func New(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.Slots == 0 {
		cfg.Slots = 4096
	}
	if cfg.MaxExpiry == 0 {
		cfg.MaxExpiry = 1
	}
	if cfg.Chain == nil {
		cfg.Chain = nf.NewChain(nf.MACSwap{})
	}
	d := &Deployment{base: cfg.Baseline}
	d.sw = core.NewSwitch("payloadpark")
	d.sw.AddL2Route(sim.MACNF, 1)
	d.sw.AddL2Route(sim.MACSink, 2)
	d.sw.AddL2Route(sim.MACGen, 2)
	if !cfg.Baseline {
		pp := core.Config{
			Slots: cfg.Slots, MaxExpiry: cfg.MaxExpiry,
			SplitPort: 0, MergePort: 1, Recirculate: cfg.Recirculate,
			BoundaryOffset: cfg.BoundaryOffset,
		}
		recirc := -1
		if cfg.Recirculate {
			recirc = 1
		}
		prog, err := d.sw.AttachPayloadPark(pp, recirc)
		if err != nil {
			return nil, fmt.Errorf("payloadpark: %w", err)
		}
		d.prog = prog
	}
	d.server = nf.NewServer(nf.ServerConfig{
		Chain:        cfg.Chain,
		ExplicitDrop: cfg.ExplicitDrop,
	})
	return d, nil
}

// Process pushes one generator packet through switch -> NF chain ->
// switch and returns what the sink receives (nil if dropped anywhere).
// The input packet is mutated; clone it first if you need the original.
func (d *Deployment) Process(pkt *Packet) *Packet {
	em := d.sw.Inject(pkt, 0)
	if em == nil {
		return nil
	}
	res := d.server.Handle(em.Pkt)
	if res.Out == nil {
		return nil
	}
	em2 := d.sw.Inject(res.Out, 1)
	if em2 == nil {
		return nil
	}
	return em2.Pkt
}

// ProcessFrame is Process at the byte level: frame in, frame out.
func (d *Deployment) ProcessFrame(frame []byte) ([]byte, error) {
	out, em, err := d.sw.InjectFrame(frame, 0)
	if err != nil {
		return nil, err
	}
	if em == nil {
		return nil, nil
	}
	// Parse as the (PayloadPark-unaware) NF framework would: any
	// PayloadPark header rides inside the payload bytes untouched.
	pkt, err := packet.Parse(out, false)
	if err != nil {
		return nil, err
	}
	res := d.server.Handle(pkt)
	if res.Out == nil {
		return nil, nil
	}
	out2, em2, err := d.sw.InjectFrame(res.Out.Serialize(), 1)
	if err != nil || em2 == nil {
		return nil, err
	}
	return out2, nil
}

// Counters returns the program's monitoring counters (nil state for a
// baseline deployment).
func (d *Deployment) Counters() *Counters {
	if d.prog == nil {
		return &Counters{}
	}
	return &d.prog.C
}

// Occupancy returns the number of occupied lookup-table slots.
func (d *Deployment) Occupancy() int {
	if d.prog == nil {
		return 0
	}
	return d.prog.Occupancy()
}

// SwitchDrops returns drop counts by reason.
func (d *Deployment) SwitchDrops() map[string]uint64 {
	return d.sw.Drops()
}

// ResourceReport describes switch resource utilization (paper Table 1).
type ResourceReport struct {
	SRAMAvgPct, SRAMPeakPct, TCAMPct, VLIWPct float64
	ExactXbarPct, TernXbarPct, PHVPct         float64
}

// Resources reports the ingress pipe's utilization.
func (d *Deployment) Resources() ResourceReport {
	u := d.sw.Pipe(0).Resources()
	return ResourceReport{
		SRAMAvgPct: u.SRAMAvgPct, SRAMPeakPct: u.SRAMPeakPct,
		TCAMPct: u.TCAMPct, VLIWPct: u.VLIWPct,
		ExactXbarPct: u.ExactXbarPct, TernXbarPct: u.TernXbarPct,
		PHVPct: u.PHVPct,
	}
}

// NewUDPPacket builds a well-formed UDP packet addressed to the embedded
// NF server, with a deterministic payload pattern.
func NewUDPPacket(flow FiveTuple, totalSize int, id uint16) *Packet {
	return packet.NewBuilder(sim.MACGen, sim.MACNF).UDP(flow, totalSize, id)
}

// Simulate runs the calibrated discrete-event testbed and reports the
// paper's metrics. See SimConfig for the knobs; harness presets for the
// paper's machine calibrations are available through Experiments.
//
// Deprecated: use Run with a TestbedTopology — it accepts the same knobs
// through Scenario and adds cancellation and the structured Report.
// Parity tests pin this wrapper byte-identical to Run.
func Simulate(cfg SimConfig) SimResult { return sim.RunTestbed(cfg) }

// MultiServerConfig parameterizes the §6.2.3 multi-NF-server deployment
// (up to 8 servers sharing one switch, two per pipe).
type MultiServerConfig = sim.MultiServerConfig

// MultiServerResult carries per-server measurements plus the shared
// switch's SRAM picture.
type MultiServerResult = sim.MultiServerResult

// SimulateMultiServer runs the multi-server deployment in one
// discrete-event simulation.
//
// Deprecated: use Run with a MultiServerTopology.
func SimulateMultiServer(cfg MultiServerConfig) MultiServerResult {
	return sim.RunMultiServer(cfg)
}

// Fabric topology simulation (multi-switch leaf-spine deployments).
type (
	// FabricConfig parameterizes a leaf-spine fabric run: geometry,
	// parking mode, per-flow load, and the link-failure scenario.
	FabricConfig = sim.FabricConfig
	// FabricResult carries per-flow end-to-end metrics plus per-hop link
	// and switch reports.
	FabricResult = sim.FabricResult
	// ParkMode selects where the fabric parks payloads.
	ParkMode = sim.ParkMode
	// FlowResult is one source->NF->sink flow's measurements.
	FlowResult = sim.FlowResult
	// LinkStats / SwitchStats are the per-hop reports.
	LinkStats   = sim.LinkStats
	SwitchStats = sim.SwitchStats
)

// Parking modes for SimulateFabric.
const (
	// ParkNoneMode runs the fabric as plain L2 switches (baseline).
	ParkNoneMode = sim.ParkNone
	// ParkEdgeMode parks at the ingress leaf: slim packets cross every
	// fabric hop and are restored just before leaving the programmable
	// domain.
	ParkEdgeMode = sim.ParkEdge
	// ParkEveryHopMode stripes the payload across the path (§7): every
	// switch parks its own block.
	ParkEveryHopMode = sim.ParkEveryHop
)

// SimulateFabric runs a leaf-spine fabric simulation: every leaf hosts a
// traffic source, a sink, and an NF server; flows cross the spine in
// both directions, parked according to cfg.Mode, with static route
// tables and per-switch PayloadPark programs.
//
// Deprecated: use Run with a LeafSpineTopology.
func SimulateFabric(cfg FabricConfig) FabricResult { return sim.RunLeafSpine(cfg) }

// DefaultServerModel is the OpenNetVM-on-Xeon calibration: the paper's
// 8-core machine with RSS receive-side scaling across all cores (see
// ServerModel.Cores).
func DefaultServerModel() ServerModel { return sim.DefaultServerModel() }

// MultiServerModel is the §6.2.3 multi-server calibration: entry-level
// 8-core 2.4 GHz Xeons whose per-core receive cost — not the 10 GbE
// link — caps PayloadPark runs. Use it (optionally with Cores overridden)
// to study how saturation scales with core count.
func MultiServerModel() ServerModel { return harness.MultiServer10G() }

// Experiments returns the per-figure/table reproduction harness.
func Experiments() []Experiment { return harness.All() }

// ExperimentIDs returns every experiment id, sorted.
func ExperimentIDs() []string { return harness.IDs() }

// RunExperiment executes one experiment by id (e.g. "fig7", "table1"),
// writing its output to w. Quick trades precision for speed. An unknown
// id's error lists the valid ids.
//
// Deprecated: use Experiments and Experiment.Run (or Experiment.Collect
// for the structured result); the harness itself runs on Run/RunSweep.
func RunExperiment(id string, quick bool, seed int64, w io.Writer) error {
	e, ok := harness.ByID(id)
	if !ok {
		return fmt.Errorf("payloadpark: unknown experiment %q (valid: %s)",
			id, strings.Join(harness.IDs(), ", "))
	}
	return e.Run(harness.Options{Quick: quick, Seed: seed}, w)
}

// PortID names a switch port (re-export for advanced switch wiring).
type PortID = rmt.PortID
