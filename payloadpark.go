// Package payloadpark is a faithful software reproduction of
// "Parking Packet Payload with P4" (Goswami et al., CoNEXT 2020).
//
// PayloadPark improves the goodput of shallow network functions (NFs) —
// firewalls, NATs, L4 load balancers — by parking packet payloads in the
// stateful memory of a programmable switch: only headers travel to the NF
// server, and the switch reassembles the packet when the headers return.
//
// This package is the public facade over the internal reproduction:
//
//   - Deployment builds the canonical testbed (traffic generator, RMT
//     switch running the PayloadPark P4 program, NF server) and lets
//     applications push packets through it in-process.
//   - Simulate runs the calibrated discrete-event model and reports the
//     paper's metrics (goodput, latency, PCIe bandwidth, drop health).
//   - Experiments exposes the per-figure/table reproduction harness.
//
// The dataplane is byte-accurate: Split really removes the parked bytes
// from the packet and stores them in register cells that obey the RMT
// one-stateful-access-per-table restriction; Merge really reassembles the
// original bytes. Running the same traffic with and without PayloadPark
// yields byte-identical output (§6.2.6 of the paper).
package payloadpark

import (
	"fmt"
	"io"

	"github.com/payloadpark/payloadpark/internal/core"
	"github.com/payloadpark/payloadpark/internal/harness"
	"github.com/payloadpark/payloadpark/internal/nf"
	"github.com/payloadpark/payloadpark/internal/packet"
	"github.com/payloadpark/payloadpark/internal/rmt"
	"github.com/payloadpark/payloadpark/internal/sim"
	"github.com/payloadpark/payloadpark/internal/trafficgen"
)

// Re-exported building blocks. The aliases keep the public API to one
// import while the implementation stays modular.
type (
	// Packet is a parsed network packet (Ethernet/IPv4/UDP|TCP, optional
	// PayloadPark header).
	Packet = packet.Packet
	// FiveTuple is the flow key shallow NFs examine.
	FiveTuple = packet.FiveTuple
	// MAC is an Ethernet address.
	MAC = packet.MAC
	// IPv4Addr is an IPv4 address.
	IPv4Addr = packet.IPv4Addr
	// NF is a shallow network function.
	NF = nf.NF
	// Chain is an ordered NF chain.
	Chain = nf.Chain
	// FirewallRule blacklists an IPv4 source prefix.
	FirewallRule = nf.FirewallRule
	// SlimDPINF classifies packets by a payload-prefix scan (§7).
	SlimDPINF = nf.SlimDPI
	// Config parameterizes the PayloadPark program (lookup table size,
	// expiry threshold, recirculation).
	Config = core.Config
	// Counters are the switch program's monitoring counters.
	Counters = core.Counters
	// SimResult is a simulated deployment's measurements.
	SimResult = sim.Result
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.TestbedConfig
	// ServerModel calibrates the simulated NF server.
	ServerModel = sim.ServerModel
	// CoreStat is one NF-server core's drop/occupancy record.
	CoreStat = sim.CoreStat
	// SizeDist draws packet sizes for generated traffic.
	SizeDist = trafficgen.SizeDist
	// Experiment is one paper table/figure reproduction.
	Experiment = harness.Experiment
)

// Parked-payload geometry (fixed by the hardware model, §5 and §6.2.5).
const (
	// ParkBytes is the payload bytes parked per packet without
	// recirculation.
	ParkBytes = core.BaseParkBytes
	// ParkBytesRecirculated is the payload bytes parked with
	// recirculation.
	ParkBytesRecirculated = core.RecircParkBytes
	// HeaderUnitLen is the Ethernet+IPv4+UDP header size the paper uses
	// as the unit of goodput.
	HeaderUnitLen = packet.HeaderUnitLen
)

// NF constructors, re-exported.
var (
	// NewFirewall builds the linear-probe ACL firewall.
	NewFirewall = nf.NewFirewall
	// BlacklistFraction builds a one-rule blacklist dropping roughly the
	// given fraction of uniform 10.0.0.0/8 traffic (Fig. 12's knob).
	BlacklistFraction = nf.BlacklistFraction
	// NewNAT builds the MazuNAT-style source NAT.
	NewNAT = nf.NewNAT
	// NewLoadBalancer builds the Maglev-based L4 load balancer.
	NewLoadBalancer = nf.NewLoadBalancer
	// NewSynthetic builds a MAC-swapping NF with a configurable CPU cost.
	NewSynthetic = nf.NewSynthetic
	// NewSlimDPI builds a payload-prefix classifier; pair it with
	// DeploymentConfig.BoundaryOffset >= its prefix length.
	NewSlimDPI = nf.NewSlimDPI
	// NewRateLimiter builds a per-flow token-bucket policer.
	NewRateLimiter = nf.NewRateLimiter
	// NewChain composes NFs into a chain.
	NewChain = nf.NewChain
)

// Fixed is a constant packet-size distribution.
func Fixed(bytes int) SizeDist { return trafficgen.Fixed(bytes) }

// Datacenter is the paper's bimodal enterprise-datacenter packet-size
// distribution (Fig. 6: mean 882 B, 30% of payloads under 160 B).
func Datacenter() SizeDist { return trafficgen.Datacenter{} }

// Deployment is an in-process PayloadPark testbed: a switch with the
// program installed between a traffic source and an NF chain. It is the
// quickstart surface — push packets, observe split/merge behaviour, read
// counters. For timed measurements use Simulate.
type Deployment struct {
	sw     *core.Switch
	prog   *core.Program
	server *nf.Server
	base   bool
}

// DeploymentConfig configures New.
type DeploymentConfig struct {
	// Slots is the lookup-table capacity (default 4096).
	Slots int
	// MaxExpiry is the eviction threshold (default 1).
	MaxExpiry uint32
	// Recirculate enables 384-byte parking via a second pipe.
	Recirculate bool
	// BoundaryOffset moves the decoupling boundary (§7): the first
	// BoundaryOffset payload bytes stay visible to the NF chain in front
	// of the PayloadPark header (Slim-DPI support).
	BoundaryOffset int
	// Chain is the NF chain the embedded server runs (default: MAC swap).
	Chain *Chain
	// ExplicitDrop enables the §6.2.4 framework modification.
	ExplicitDrop bool
	// Baseline disables the PayloadPark program (pure L2 switch), for
	// equivalence comparisons.
	Baseline bool
}

// Topology MACs of the embedded testbed.
var (
	// GeneratorMAC is the traffic source address.
	GeneratorMAC = sim.MACGen
	// ServerMAC is the NF server address (send packets here).
	ServerMAC = sim.MACNF
	// SinkMAC is the receive side of the generator.
	SinkMAC = sim.MACSink
)

// New builds a deployment.
func New(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.Slots == 0 {
		cfg.Slots = 4096
	}
	if cfg.MaxExpiry == 0 {
		cfg.MaxExpiry = 1
	}
	if cfg.Chain == nil {
		cfg.Chain = nf.NewChain(nf.MACSwap{})
	}
	d := &Deployment{base: cfg.Baseline}
	d.sw = core.NewSwitch("payloadpark")
	d.sw.AddL2Route(sim.MACNF, 1)
	d.sw.AddL2Route(sim.MACSink, 2)
	d.sw.AddL2Route(sim.MACGen, 2)
	if !cfg.Baseline {
		pp := core.Config{
			Slots: cfg.Slots, MaxExpiry: cfg.MaxExpiry,
			SplitPort: 0, MergePort: 1, Recirculate: cfg.Recirculate,
			BoundaryOffset: cfg.BoundaryOffset,
		}
		recirc := -1
		if cfg.Recirculate {
			recirc = 1
		}
		prog, err := d.sw.AttachPayloadPark(pp, recirc)
		if err != nil {
			return nil, fmt.Errorf("payloadpark: %w", err)
		}
		d.prog = prog
	}
	d.server = nf.NewServer(nf.ServerConfig{
		Chain:        cfg.Chain,
		ExplicitDrop: cfg.ExplicitDrop,
	})
	return d, nil
}

// Process pushes one generator packet through switch -> NF chain ->
// switch and returns what the sink receives (nil if dropped anywhere).
// The input packet is mutated; clone it first if you need the original.
func (d *Deployment) Process(pkt *Packet) *Packet {
	em := d.sw.Inject(pkt, 0)
	if em == nil {
		return nil
	}
	res := d.server.Handle(em.Pkt)
	if res.Out == nil {
		return nil
	}
	em2 := d.sw.Inject(res.Out, 1)
	if em2 == nil {
		return nil
	}
	return em2.Pkt
}

// ProcessFrame is Process at the byte level: frame in, frame out.
func (d *Deployment) ProcessFrame(frame []byte) ([]byte, error) {
	out, em, err := d.sw.InjectFrame(frame, 0)
	if err != nil {
		return nil, err
	}
	if em == nil {
		return nil, nil
	}
	// Parse as the (PayloadPark-unaware) NF framework would: any
	// PayloadPark header rides inside the payload bytes untouched.
	pkt, err := packet.Parse(out, false)
	if err != nil {
		return nil, err
	}
	res := d.server.Handle(pkt)
	if res.Out == nil {
		return nil, nil
	}
	out2, em2, err := d.sw.InjectFrame(res.Out.Serialize(), 1)
	if err != nil || em2 == nil {
		return nil, err
	}
	return out2, nil
}

// Counters returns the program's monitoring counters (nil state for a
// baseline deployment).
func (d *Deployment) Counters() *Counters {
	if d.prog == nil {
		return &Counters{}
	}
	return &d.prog.C
}

// Occupancy returns the number of occupied lookup-table slots.
func (d *Deployment) Occupancy() int {
	if d.prog == nil {
		return 0
	}
	return d.prog.Occupancy()
}

// SwitchDrops returns drop counts by reason.
func (d *Deployment) SwitchDrops() map[string]uint64 {
	return d.sw.Drops()
}

// ResourceReport describes switch resource utilization (paper Table 1).
type ResourceReport struct {
	SRAMAvgPct, SRAMPeakPct, TCAMPct, VLIWPct float64
	ExactXbarPct, TernXbarPct, PHVPct         float64
}

// Resources reports the ingress pipe's utilization.
func (d *Deployment) Resources() ResourceReport {
	u := d.sw.Pipe(0).Resources()
	return ResourceReport{
		SRAMAvgPct: u.SRAMAvgPct, SRAMPeakPct: u.SRAMPeakPct,
		TCAMPct: u.TCAMPct, VLIWPct: u.VLIWPct,
		ExactXbarPct: u.ExactXbarPct, TernXbarPct: u.TernXbarPct,
		PHVPct: u.PHVPct,
	}
}

// NewUDPPacket builds a well-formed UDP packet addressed to the embedded
// NF server, with a deterministic payload pattern.
func NewUDPPacket(flow FiveTuple, totalSize int, id uint16) *Packet {
	return packet.NewBuilder(sim.MACGen, sim.MACNF).UDP(flow, totalSize, id)
}

// Simulate runs the calibrated discrete-event testbed and reports the
// paper's metrics. See SimConfig for the knobs; harness presets for the
// paper's machine calibrations are available through Experiments.
func Simulate(cfg SimConfig) SimResult { return sim.RunTestbed(cfg) }

// MultiServerConfig parameterizes the §6.2.3 multi-NF-server deployment
// (up to 8 servers sharing one switch, two per pipe).
type MultiServerConfig = sim.MultiServerConfig

// MultiServerResult carries per-server measurements plus the shared
// switch's SRAM picture.
type MultiServerResult = sim.MultiServerResult

// SimulateMultiServer runs the multi-server deployment in one
// discrete-event simulation.
func SimulateMultiServer(cfg MultiServerConfig) MultiServerResult {
	return sim.RunMultiServer(cfg)
}

// Fabric topology simulation (multi-switch leaf-spine deployments).
type (
	// FabricConfig parameterizes a leaf-spine fabric run: geometry,
	// parking mode, per-flow load, and the link-failure scenario.
	FabricConfig = sim.FabricConfig
	// FabricResult carries per-flow end-to-end metrics plus per-hop link
	// and switch reports.
	FabricResult = sim.FabricResult
	// ParkMode selects where the fabric parks payloads.
	ParkMode = sim.ParkMode
	// FlowResult is one source->NF->sink flow's measurements.
	FlowResult = sim.FlowResult
	// LinkStats / SwitchStats are the per-hop reports.
	LinkStats   = sim.LinkStats
	SwitchStats = sim.SwitchStats
)

// Parking modes for SimulateFabric.
const (
	// ParkNoneMode runs the fabric as plain L2 switches (baseline).
	ParkNoneMode = sim.ParkNone
	// ParkEdgeMode parks at the ingress leaf: slim packets cross every
	// fabric hop and are restored just before leaving the programmable
	// domain.
	ParkEdgeMode = sim.ParkEdge
	// ParkEveryHopMode stripes the payload across the path (§7): every
	// switch parks its own block.
	ParkEveryHopMode = sim.ParkEveryHop
)

// SimulateFabric runs a leaf-spine fabric simulation: every leaf hosts a
// traffic source, a sink, and an NF server; flows cross the spine in
// both directions, parked according to cfg.Mode, with static route
// tables and per-switch PayloadPark programs.
func SimulateFabric(cfg FabricConfig) FabricResult { return sim.RunLeafSpine(cfg) }

// DefaultServerModel is the OpenNetVM-on-Xeon calibration: the paper's
// 8-core machine with RSS receive-side scaling across all cores (see
// ServerModel.Cores).
func DefaultServerModel() ServerModel { return sim.DefaultServerModel() }

// MultiServerModel is the §6.2.3 multi-server calibration: entry-level
// 8-core 2.4 GHz Xeons whose per-core receive cost — not the 10 GbE
// link — caps PayloadPark runs. Use it (optionally with Cores overridden)
// to study how saturation scales with core count.
func MultiServerModel() ServerModel { return harness.MultiServer10G() }

// Experiments returns the per-figure/table reproduction harness.
func Experiments() []Experiment { return harness.All() }

// RunExperiment executes one experiment by id (e.g. "fig7", "table1"),
// writing its output to w. Quick trades precision for speed.
func RunExperiment(id string, quick bool, seed int64, w io.Writer) error {
	e, ok := harness.ByID(id)
	if !ok {
		return fmt.Errorf("payloadpark: unknown experiment %q", id)
	}
	return e.Run(harness.Options{Quick: quick, Seed: seed}, w)
}

// PortID names a switch port (re-export for advanced switch wiring).
type PortID = rmt.PortID
