module github.com/payloadpark/payloadpark

go 1.22
